//! Uniform flag parsing for every subcommand.
//!
//! Each subcommand declares its flags as a [`FlagDef`] table; parsing
//! reports unknown flags, missing values, stray positionals, and
//! non-numeric values as a single-line error — the binary prints it
//! and exits with status 2, uniformly across subcommands.

use std::collections::{HashMap, HashSet};

/// Whether a flag carries a value (`--seed 7`) or is a bare switch
/// (`--timings`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagKind {
    /// Takes exactly one value.
    Value,
    /// Takes no value.
    Switch,
}

/// One accepted flag of a subcommand.
#[derive(Debug, Clone, Copy)]
pub struct FlagDef {
    /// Name without the `--` prefix.
    pub name: &'static str,
    /// Value or switch.
    pub kind: FlagKind,
}

/// Shorthand for a value-carrying flag.
pub const fn value(name: &'static str) -> FlagDef {
    FlagDef {
        name,
        kind: FlagKind::Value,
    }
}

/// Shorthand for a bare switch.
pub const fn switch(name: &'static str) -> FlagDef {
    FlagDef {
        name,
        kind: FlagKind::Switch,
    }
}

/// Parsed flags of one subcommand invocation.
#[derive(Debug, Default)]
pub struct Flags {
    values: HashMap<&'static str, String>,
    switches: HashSet<&'static str>,
}

impl Flags {
    /// The raw value of `--name`, when given.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Whether the switch `--name` was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.contains(name)
    }

    /// The value of a mandatory flag.
    ///
    /// # Errors
    /// A usage line when the flag is absent.
    pub fn require(&self, command: &str, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("`{command}` requires --{name}"))
    }

    /// The numeric value of `--name`, or `default` when absent.
    ///
    /// # Errors
    /// A usage line when the value is not a non-negative integer.
    pub fn num(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects a number, got `{v}`")),
        }
    }

    /// The fractional value of `--name` in `[0, 1]`, or `default`
    /// when absent.
    ///
    /// # Errors
    /// A usage line when the value is not a number in `[0, 1]`.
    pub fn fraction(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => match v.parse::<f64>() {
                Ok(f) if (0.0..=1.0).contains(&f) => Ok(f),
                _ => Err(format!("--{name} expects a fraction in [0, 1], got `{v}`")),
            },
        }
    }
}

/// Parses the arguments after the subcommand word against a flag
/// table. `--help` and `-h` are accepted by every subcommand and
/// reported via the `Help` variant.
///
/// # Errors
/// A single-line usage error (unknown flag, missing value, stray
/// positional argument, duplicate flag).
pub fn parse(command: &str, args: &[String], defs: &[FlagDef]) -> Result<Parsed, String> {
    let mut flags = Flags::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--help" || arg == "-h" {
            return Ok(Parsed::Help);
        }
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument `{arg}` for `{command}`"));
        };
        let Some(def) = defs.iter().find(|d| d.name == name) else {
            return Err(format!("unknown flag `--{name}` for `{command}`"));
        };
        match def.kind {
            FlagKind::Switch => {
                flags.switches.insert(def.name);
            }
            FlagKind::Value => {
                let Some(value) = it.next() else {
                    return Err(format!("flag --{name} needs a value"));
                };
                if flags.values.insert(def.name, value.clone()).is_some() {
                    return Err(format!("flag --{name} given twice"));
                }
            }
        }
    }
    Ok(Parsed::Flags(flags))
}

/// Outcome of [`parse`]: either the parsed flags or a help request.
#[derive(Debug)]
pub enum Parsed {
    /// Flags parsed successfully.
    Flags(Flags),
    /// The user asked for `--help`.
    Help,
}

/// Outcome of [`parse_mixed`]: flags plus positional words, or a help
/// request.
#[derive(Debug)]
pub enum ParsedMixed {
    /// Flags and the positional arguments, in input order.
    Flags(Flags, Vec<String>),
    /// The user asked for `--help`.
    Help,
}

/// As [`parse`], but positional (non-`--`) arguments are collected in
/// input order instead of being rejected — for subcommands like
/// `query` whose one-shot request is spelled as bare words
/// (`query --snapshot S pattern 17`).
///
/// # Errors
/// As [`parse`], minus the stray-positional case.
pub fn parse_mixed(
    command: &str,
    args: &[String],
    defs: &[FlagDef],
) -> Result<ParsedMixed, String> {
    let mut flags = Flags::default();
    let mut positionals = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--help" || arg == "-h" {
            return Ok(ParsedMixed::Help);
        }
        let Some(name) = arg.strip_prefix("--") else {
            positionals.push(arg.clone());
            continue;
        };
        let Some(def) = defs.iter().find(|d| d.name == name) else {
            return Err(format!("unknown flag `--{name}` for `{command}`"));
        };
        match def.kind {
            FlagKind::Switch => {
                flags.switches.insert(def.name);
            }
            FlagKind::Value => {
                let Some(value) = it.next() else {
                    return Err(format!("flag --{name} needs a value"));
                };
                if flags.values.insert(def.name, value.clone()).is_some() {
                    return Err(format!("flag --{name} given twice"));
                }
            }
        }
    }
    Ok(ParsedMixed::Flags(flags, positionals))
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEFS: &[FlagDef] = &[value("seed"), value("out"), switch("timings")];

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn ok(list: &[&str]) -> Flags {
        match parse("test", &args(list), DEFS).unwrap() {
            Parsed::Flags(f) => f,
            Parsed::Help => panic!("unexpected help"),
        }
    }

    #[test]
    fn parses_values_switches_and_defaults() {
        let f = ok(&["--seed", "7", "--timings"]);
        assert_eq!(f.num("seed", 42).unwrap(), 7);
        assert!(f.has("timings"));
        assert_eq!(f.num("days", 14).unwrap(), 14);
        assert_eq!(f.get("out"), None);
    }

    #[test]
    fn rejects_unknown_flags_and_positionals() {
        let e = parse("test", &args(&["--bogus", "1"]), DEFS).unwrap_err();
        assert_eq!(e, "unknown flag `--bogus` for `test`");
        let e = parse("test", &args(&["stray"]), DEFS).unwrap_err();
        assert_eq!(e, "unexpected argument `stray` for `test`");
    }

    #[test]
    fn rejects_missing_values_duplicates_and_non_numbers() {
        let e = parse("test", &args(&["--seed"]), DEFS).unwrap_err();
        assert_eq!(e, "flag --seed needs a value");
        let e = parse("test", &args(&["--seed", "1", "--seed", "2"]), DEFS).unwrap_err();
        assert_eq!(e, "flag --seed given twice");
        let f = ok(&["--seed", "abc"]);
        assert_eq!(
            f.num("seed", 42).unwrap_err(),
            "--seed expects a number, got `abc`"
        );
    }

    #[test]
    fn help_is_accepted_everywhere() {
        assert!(matches!(
            parse("test", &args(&["--seed", "1", "--help"]), DEFS).unwrap(),
            Parsed::Help
        ));
        assert!(matches!(
            parse("test", &args(&["-h"]), DEFS).unwrap(),
            Parsed::Help
        ));
    }

    #[test]
    fn fractions_accept_the_unit_interval_only() {
        let f = ok(&["--seed", "0.25"]);
        assert_eq!(f.fraction("seed", 0.05).unwrap(), 0.25);
        assert_eq!(f.fraction("out", 0.05).unwrap(), 0.05);
        for bad in [
            &["--seed", "1.5"][..],
            &["--seed", "-0.1"],
            &["--seed", "x"],
        ] {
            let f = ok(bad);
            assert_eq!(
                f.fraction("seed", 0.05).unwrap_err(),
                format!("--seed expects a fraction in [0, 1], got `{}`", bad[1])
            );
        }
    }

    #[test]
    fn mixed_parse_collects_positionals_in_order() {
        let ParsedMixed::Flags(f, pos) = parse_mixed(
            "test",
            &args(&["pattern", "--seed", "7", "17", "--timings", "3"]),
            DEFS,
        )
        .unwrap() else {
            panic!("unexpected help");
        };
        assert_eq!(f.num("seed", 42).unwrap(), 7);
        assert!(f.has("timings"));
        assert_eq!(pos, vec!["pattern", "17", "3"]);
        // Flags are still validated.
        let e = parse_mixed("test", &args(&["x", "--bogus", "1"]), DEFS).unwrap_err();
        assert_eq!(e, "unknown flag `--bogus` for `test`");
        assert!(matches!(
            parse_mixed("test", &args(&["-h"]), DEFS).unwrap(),
            ParsedMixed::Help
        ));
    }

    #[test]
    fn mandatory_flags_report_the_command() {
        let f = ok(&[]);
        assert_eq!(f.require("gen", "out").unwrap_err(), "`gen` requires --out");
    }
}
