//! `towerlens-cli` — file-based CLI.
//!
//! ```text
//! towerlens-cli gen     --out DIR [--seed N] [--towers N] [--agents N] [--days N]
//! towerlens-cli analyze --dir DIR [--days N] [--threads N] [--resume DIR] [--timings] [--json]
//! towerlens-cli study   [--scale S] [--seed N] [--resume DIR] [--timings] [--json]
//! ```
//!
//! Exit status: 0 success, 1 runtime failure, 2 usage error. Usage
//! errors (unknown command, unknown flag, missing or non-numeric
//! value) are reported as a single line on stderr, uniformly across
//! subcommands.

use std::path::PathBuf;

use towerlens_cli::args::{self, switch, value, FlagDef, Flags, Parsed};
use towerlens_cli::commands::{
    analyze_instrumented, generate_dataset, run_study, study_config, AnalyzeOptions, GenOptions,
};
use towerlens_core::RunReport;

const USAGE: &str = "\
towerlens-cli — synthetic cellular-trace datasets and their analysis

usage:
  towerlens-cli gen     --out DIR [--seed N] [--towers N] [--agents N] [--days N]
      write a synthetic dataset (logs.tsv, towers.tsv, pois.tsv, truth.tsv)

  towerlens-cli analyze --dir DIR [--days N] [--threads N]
                        [--resume DIR] [--timings] [--json]
      parse, clean, vectorize, cluster, and label a dataset directory

  towerlens-cli study   [--scale tiny|small|medium|paper] [--seed N]
                        [--resume DIR] [--timings] [--json]
      run the full in-process paper study through the stage engine

  towerlens-cli help
      print this message

common flags:
  --resume DIR   reuse (and write) stage checkpoints under DIR; a
                 second run reloads the expensive stages bit-identically
  --timings      print the per-stage wave/status/wall-time table
  --json         print the per-stage report as JSON instead of the
                 human summary

exit status: 0 success, 1 runtime failure, 2 usage error";

fn main() {
    std::process::exit(run(&std::env::args().skip(1).collect::<Vec<_>>()));
}

/// Prints a usage error and returns exit code 2.
fn usage_error(message: &str) -> i32 {
    eprintln!("{message}");
    2
}

/// Parses a subcommand's flags; prints help or a one-line error.
fn parse_or_exit(command: &str, raw: &[String], defs: &[FlagDef]) -> Result<Flags, i32> {
    match args::parse(command, raw, defs) {
        Ok(Parsed::Flags(flags)) => Ok(flags),
        Ok(Parsed::Help) => {
            println!("{USAGE}");
            Err(0)
        }
        Err(e) => Err(usage_error(&e)),
    }
}

fn emit_report(report: &RunReport, timings: bool, json: bool) {
    if timings {
        print!("{}", report.render_table());
    }
    if json {
        println!("{}", report.to_json());
    }
}

fn run(argv: &[String]) -> i32 {
    let Some(command) = argv.first() else {
        return usage_error("missing command (try `towerlens-cli help`)");
    };
    let rest = &argv[1..];
    match command.as_str() {
        "gen" => {
            const DEFS: &[FlagDef] = &[
                value("out"),
                value("seed"),
                value("towers"),
                value("agents"),
                value("days"),
            ];
            let flags = match parse_or_exit("gen", rest, DEFS) {
                Ok(f) => f,
                Err(code) => return code,
            };
            let parsed = (|| -> Result<(String, GenOptions), String> {
                let out = flags.require("gen", "out")?.to_string();
                Ok((
                    out,
                    GenOptions {
                        seed: flags.num("seed", 42)?,
                        towers: flags.num("towers", 120)? as usize,
                        agents: flags.num("agents", 800)? as usize,
                        days: flags.num("days", 14)? as usize,
                    },
                ))
            })();
            let (out, options) = match parsed {
                Ok(p) => p,
                Err(e) => return usage_error(&e),
            };
            match generate_dataset(&PathBuf::from(&out), &options) {
                Ok(n) => {
                    println!(
                        "wrote {n} records for {} towers / {} agents / {} days to {out}",
                        options.towers, options.agents, options.days
                    );
                    0
                }
                Err(e) => {
                    eprintln!("gen failed: {e}");
                    1
                }
            }
        }
        "analyze" => {
            const DEFS: &[FlagDef] = &[
                value("dir"),
                value("days"),
                value("threads"),
                value("resume"),
                switch("timings"),
                switch("json"),
            ];
            let flags = match parse_or_exit("analyze", rest, DEFS) {
                Ok(f) => f,
                Err(code) => return code,
            };
            let parsed = (|| -> Result<(String, AnalyzeOptions), String> {
                let dir = flags.require("analyze", "dir")?.to_string();
                Ok((
                    dir,
                    AnalyzeOptions {
                        days: flags.num("days", 14)? as usize,
                        threads: flags.num("threads", 0)? as usize,
                    },
                ))
            })();
            let (dir, options) = match parsed {
                Ok(p) => p,
                Err(e) => return usage_error(&e),
            };
            let resume = flags.get("resume").map(PathBuf::from);
            match analyze_instrumented(&PathBuf::from(&dir), &options, resume.as_deref()) {
                Ok((s, report)) => {
                    if !flags.has("json") {
                        println!(
                            "{} records ({} after cleaning); {} patterns:",
                            s.records, s.kept, s.k
                        );
                        for (c, (kind, share)) in s.labels.iter().zip(&s.shares).enumerate() {
                            println!("  cluster {c}: {kind:<13} {:5.1}%", share * 100.0);
                        }
                        if let Some(ari) = s.ari_vs_truth {
                            println!("adjusted Rand index vs truth.tsv: {ari:.3}");
                        }
                    }
                    emit_report(&report, flags.has("timings"), flags.has("json"));
                    0
                }
                Err(e) => {
                    eprintln!("analyze failed: {e}");
                    1
                }
            }
        }
        "study" => {
            const DEFS: &[FlagDef] = &[
                value("scale"),
                value("seed"),
                value("resume"),
                switch("timings"),
                switch("json"),
            ];
            let flags = match parse_or_exit("study", rest, DEFS) {
                Ok(f) => f,
                Err(code) => return code,
            };
            let scale = flags.get("scale").unwrap_or("tiny").to_string();
            let seed = match flags.num("seed", 42) {
                Ok(s) => s,
                Err(e) => return usage_error(&e),
            };
            let config = match study_config(&scale, seed) {
                Ok(c) => c,
                Err(e) => return usage_error(&e),
            };
            let resume = flags.get("resume").map(PathBuf::from);
            match run_study(config, resume.as_deref()) {
                Ok((report, run_report)) => {
                    if !flags.has("json") {
                        println!(
                            "study {scale} seed {seed}: {} towers, {} analysed, {} patterns",
                            report.raw.len(),
                            report.vectors.len(),
                            report.patterns.k
                        );
                        let shares = report.patterns.clustering.shares();
                        for (c, (kind, share)) in report.geo.labels.iter().zip(&shares).enumerate()
                        {
                            println!("  cluster {c}: {kind:<13} {:5.1}%", share * 100.0);
                        }
                        println!(
                            "ground-truth agreement: {:.3}",
                            report.geo.ground_truth_agreement
                        );
                    }
                    emit_report(&run_report, flags.has("timings"), flags.has("json"));
                    0
                }
                Err(e) => {
                    eprintln!("study failed: {e}");
                    1
                }
            }
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            0
        }
        other => usage_error(&format!(
            "unknown command `{other}` (try `towerlens-cli help`)"
        )),
    }
}
