//! `towerlens-cli` — file-based CLI.
//!
//! The binary is a one-line wrapper around [`towerlens_cli::app::run`]
//! so that dispatch, rendering, and exit codes are all testable as
//! library code.

fn main() {
    std::process::exit(towerlens_cli::app::run(
        &std::env::args().skip(1).collect::<Vec<_>>(),
    ));
}
