//! `towerlens-cli` — file-based CLI.
//!
//! ```text
//! towerlens-cli gen     --out DIR [--seed N] [--towers N] [--agents N] [--days N]
//! towerlens-cli analyze --dir DIR [--days N] [--threads N]
//! ```

use std::path::PathBuf;

use towerlens_cli::{analyze, generate_dataset, AnalyzeOptions, GenOptions};

fn usage() -> ! {
    eprintln!(
        "usage:\n  towerlens-cli gen     --out DIR [--seed N] [--towers N] [--agents N] [--days N]\n  \
         towerlens-cli analyze --dir DIR [--days N] [--threads N]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };
    let mut flags = std::collections::HashMap::new();
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            eprintln!("unexpected argument `{flag}`");
            usage()
        };
        let Some(value) = it.next() else {
            eprintln!("flag --{name} needs a value");
            usage()
        };
        flags.insert(name.to_string(), value.clone());
    }
    let num = |flags: &std::collections::HashMap<String, String>, key: &str, default: u64| -> u64 {
        flags
            .get(key)
            .map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("--{key} expects a number, got `{v}`");
                    std::process::exit(2);
                })
            })
            .unwrap_or(default)
    };

    match command.as_str() {
        "gen" => {
            let Some(out) = flags.get("out") else {
                eprintln!("gen requires --out DIR");
                usage()
            };
            let options = GenOptions {
                seed: num(&flags, "seed", 42),
                towers: num(&flags, "towers", 120) as usize,
                agents: num(&flags, "agents", 800) as usize,
                days: num(&flags, "days", 14) as usize,
            };
            match generate_dataset(&PathBuf::from(out), &options) {
                Ok(n) => println!(
                    "wrote {n} records for {} towers / {} agents / {} days to {out}",
                    options.towers, options.agents, options.days
                ),
                Err(e) => {
                    eprintln!("gen failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "analyze" => {
            let Some(dir) = flags.get("dir") else {
                eprintln!("analyze requires --dir DIR");
                usage()
            };
            let options = AnalyzeOptions {
                days: num(&flags, "days", 14) as usize,
                threads: num(&flags, "threads", 0) as usize,
            };
            match analyze(&PathBuf::from(dir), &options) {
                Ok(s) => {
                    println!(
                        "{} records ({} after cleaning); {} patterns:",
                        s.records, s.kept, s.k
                    );
                    for (c, (kind, share)) in s.labels.iter().zip(&s.shares).enumerate() {
                        println!("  cluster {c}: {kind:<13} {:5.1}%", share * 100.0);
                    }
                    if let Some(ari) = s.ari_vs_truth {
                        println!("adjusted Rand index vs truth.tsv: {ari:.3}");
                    }
                }
                Err(e) => {
                    eprintln!("analyze failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("unknown command `{other}`");
            usage()
        }
    }
}
