//! The `gen` and `analyze` subcommands as library functions.

use std::io::{BufWriter, Write};
use std::path::Path;

use towerlens_city::city::City;
use towerlens_city::config::CityConfig;
use towerlens_city::generate::generate;
use towerlens_city::geo::BoundingBox;
use towerlens_city::poi::PoiIndex;
use towerlens_city::zone::RegionKind;
use towerlens_cluster::compare::adjusted_rand_index;
use towerlens_cluster::dendrogram::Clustering;
use towerlens_core::identifier::{IdentifierConfig, PatternIdentifier};
use towerlens_core::labeling::label_clusters_parts;
use towerlens_mobility::agents::{AgentConfig, AgentPopulation};
use towerlens_pipeline::vectorizer::Vectorizer;
use towerlens_trace::clean::clean_records;
use towerlens_trace::record::RecordReader;
use towerlens_trace::time::TraceWindow;

use crate::files::{
    read_pois, read_towers, read_truth, write_pois, write_towers, write_truth, FileError,
    TowerRow,
};

/// Options for dataset generation.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// RNG seed.
    pub seed: u64,
    /// Number of towers.
    pub towers: usize,
    /// Number of subscribers.
    pub agents: usize,
    /// Days of logs (day 0 is a Monday).
    pub days: usize,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            seed: 42,
            towers: 120,
            agents: 800,
            days: 14,
        }
    }
}

/// Generates a dataset directory (`logs.tsv`, `towers.tsv`,
/// `pois.tsv`, `truth.tsv`). Returns the number of log records
/// written.
///
/// # Errors
/// Generation and I/O failures.
pub fn generate_dataset(dir: &Path, options: &GenOptions) -> Result<usize, Box<dyn std::error::Error>> {
    std::fs::create_dir_all(dir)?;
    let mut city_cfg = CityConfig::tiny(options.seed);
    city_cfg.n_towers = options.towers;
    let city = generate(&city_cfg)?;
    let window = TraceWindow::days(options.days);
    let population = AgentPopulation::generate(
        &city,
        AgentConfig {
            seed: options.seed,
            n_agents: options.agents,
            sessions_per_hour: 2.4,
            ..AgentConfig::default()
        },
    );
    let records = population.emit_logs(&city, &window);

    // logs.tsv — streamed, operator exports are large.
    let mut w = BufWriter::new(std::fs::File::create(dir.join("logs.tsv"))?);
    for r in &records {
        writeln!(w, "{}", r.to_line())?;
    }
    w.flush()?;

    let towers: Vec<TowerRow> = city
        .towers()
        .iter()
        .map(|t| TowerRow {
            id: t.id,
            position: t.position,
            address: t.address.clone(),
        })
        .collect();
    write_towers(&dir.join("towers.tsv"), &towers)?;
    write_pois(&dir.join("pois.tsv"), city.pois().pois())?;
    let truth: Vec<(usize, RegionKind)> = city
        .towers()
        .iter()
        .map(|t| (t.id, t.kind_truth))
        .collect();
    write_truth(&dir.join("truth.tsv"), &truth)?;
    Ok(records.len())
}

/// Options for analysis.
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Days covered by the logs (the binning window).
    pub days: usize,
    /// Worker threads for the vectorizer (0 = auto).
    pub threads: usize,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            days: 14,
            threads: 0,
        }
    }
}

/// What `analyze` found.
#[derive(Debug)]
pub struct AnalyzeSummary {
    /// Records parsed from `logs.tsv`.
    pub records: usize,
    /// Records surviving cleaning.
    pub kept: usize,
    /// Number of patterns found.
    pub k: usize,
    /// Per-cluster labels (canonical kinds).
    pub labels: Vec<RegionKind>,
    /// Per-cluster shares.
    pub shares: Vec<f64>,
    /// Adjusted Rand index vs `truth.tsv`, when present.
    pub ari_vs_truth: Option<f64>,
}

/// Analyzes a dataset directory: parse → clean → vectorize → cluster
/// → label; scores against `truth.tsv` when present.
///
/// # Errors
/// I/O, parse, and analysis failures.
pub fn analyze(dir: &Path, options: &AnalyzeOptions) -> Result<AnalyzeSummary, Box<dyn std::error::Error>> {
    // Stream the log file: operator exports don't fit in memory.
    let log_file = std::io::BufReader::new(std::fs::File::open(dir.join("logs.tsv"))?);
    let mut records = Vec::new();
    let mut parse_errors = 0usize;
    for item in RecordReader::new(log_file) {
        match item? {
            Ok(r) => records.push(r),
            Err(_) => parse_errors += 1,
        }
    }
    if records.is_empty() {
        return Err(Box::new(FileError::Malformed {
            file: "logs.tsv",
            lines: parse_errors,
        }));
    }
    let (towers, _) = read_towers(&dir.join("towers.tsv"))?;
    let (pois, _) = read_pois(&dir.join("pois.tsv"))?;

    let (clean, _report) = clean_records(&records);
    let n_towers = towers.iter().map(|t| t.id + 1).max().unwrap_or(0);
    let window = TraceWindow::days(options.days);
    // Guard the classic footgun: a window longer than the data pads
    // zero bins, which silently wrecks the z-scored clustering.
    let last_end = records.iter().map(|r| r.end_s).max().unwrap_or(0);
    if last_end < window.start_s + (window.end_s() - window.start_s) * 4 / 5 {
        eprintln!(
            "warning: logs end at {}s but the --days {} window runs to {}s; \
             trailing bins will be zero — pass a --days matching the data",
            last_end,
            options.days,
            window.end_s()
        );
    }
    let vectorizer = Vectorizer::new(window, options.threads);
    let output = vectorizer.run(&clean, n_towers)?;

    let identifier = PatternIdentifier::new(IdentifierConfig::default());
    let found = identifier.identify(&output.normalized.vectors)?;

    // Geographic labelling from files (no synthetic City needed).
    let mut positions = vec![towerlens_city::geo::GeoPoint::new(0.0, 0.0); n_towers];
    let mut bounds = BoundingBox::empty();
    for t in &towers {
        positions[t.id] = t.position;
        bounds.include(&t.position);
    }
    let poi_index = PoiIndex::build(pois);
    let geo = label_clusters_parts(
        &positions,
        &bounds,
        &poi_index,
        &found.clustering,
        &output.normalized.kept_ids,
    )?;

    // Optional truth comparison.
    let truth_path = dir.join("truth.tsv");
    let ari_vs_truth = if truth_path.exists() {
        let (truth_rows, _) = read_truth(&truth_path)?;
        let mut by_id = vec![None; n_towers];
        for (id, kind) in truth_rows {
            if id < n_towers {
                by_id[id] = Some(kind);
            }
        }
        let truth_labels: Option<Vec<usize>> = output
            .normalized
            .kept_ids
            .iter()
            .map(|&id| by_id[id].map(|k| k.index()))
            .collect();
        match truth_labels {
            Some(labels) => {
                // Compact to consecutive labels for the comparison.
                let mut map = std::collections::HashMap::new();
                let mut next = 0usize;
                let compact: Vec<usize> = labels
                    .into_iter()
                    .map(|l| {
                        *map.entry(l).or_insert_with(|| {
                            let v = next;
                            next += 1;
                            v
                        })
                    })
                    .collect();
                let truth_clustering = Clustering::from_labels(compact)?;
                Some(adjusted_rand_index(&found.clustering, &truth_clustering)?)
            }
            None => None,
        }
    } else {
        None
    };

    Ok(AnalyzeSummary {
        records: records.len(),
        kept: clean.len(),
        k: found.k,
        labels: geo.labels,
        shares: found.clustering.shares(),
        ari_vs_truth,
    })
}

/// Convenience for tests: generate then analyze in one temp dir.
#[doc(hidden)]
pub fn roundtrip_in(dir: &Path) -> Result<AnalyzeSummary, Box<dyn std::error::Error>> {
    generate_dataset(dir, &GenOptions::default())?;
    analyze(dir, &AnalyzeOptions::default())
}

// City is used only via towers/POIs here, but keep the import local to
// the signature users expect.
#[allow(unused)]
fn _assert_city_unused(_: &City) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_then_analyze_roundtrip() {
        let dir = std::env::temp_dir().join("towerlens-cli-roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let options = GenOptions {
            seed: 5,
            towers: 80,
            agents: 500,
            days: 7,
        };
        let written = generate_dataset(&dir, &options).expect("gen");
        assert!(written > 1_000, "only {written} records");
        for f in ["logs.tsv", "towers.tsv", "pois.tsv", "truth.tsv"] {
            assert!(dir.join(f).exists(), "{f} missing");
        }
        let summary = analyze(
            &dir,
            &AnalyzeOptions {
                days: 7,
                threads: 2,
            },
        )
        .expect("analyze");
        assert_eq!(summary.records, written);
        assert!(summary.kept <= summary.records);
        assert!(summary.k >= 2, "k = {}", summary.k);
        assert_eq!(summary.labels.len(), summary.k);
        let ari = summary.ari_vs_truth.expect("truth present");
        assert!(ari > 0.1, "ari {ari}");
        let share_sum: f64 = summary.shares.iter().sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn analyze_missing_dir_errors() {
        let dir = std::env::temp_dir().join("towerlens-cli-missing");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(analyze(&dir, &AnalyzeOptions::default()).is_err());
    }
}
