//! The `gen`, `analyze`, and `study` subcommands as library functions.
//!
//! `analyze` is expressed as a stage graph on the
//! [`towerlens_core::engine`] runtime:
//!
//! ```text
//! wave 0   ingest-logs | ingest-geo       — concurrent
//! wave 1   clean          (ingest-logs)
//! wave 2   vectorize      (clean)                [checkpointed]
//! wave 3   cluster        (vectorize)            [checkpointed]
//! wave 4   label | score  (ingest-geo, vectorize, cluster)
//! ```
//!
//! With `--resume DIR` the vectorize and cluster stages reload from
//! checkpoints, which also prunes the log ingestion and cleaning
//! stages entirely (their artifacts are no longer demanded).

use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use towerlens_artifact::fnv1a64;
use towerlens_artifact::{ArtifactError, ArtifactFsck};
use towerlens_city::config::CityConfig;
use towerlens_city::generate::generate;
use towerlens_city::geo::{BoundingBox, GeoPoint};
use towerlens_city::poi::{Poi, PoiIndex};
use towerlens_city::zone::RegionKind;
use towerlens_cluster::compare::adjusted_rand_index;
use towerlens_cluster::dendrogram::Clustering;
use towerlens_core::engine::checkpoint::{decode_usize, BodyReader};
use towerlens_core::engine::{
    decode_normalized, decode_patterns, encode_normalized, encode_patterns, fsck_file,
    CheckpointError, CheckpointStore, EngineError, FsckInfo, Graph, RunReport, Stage, StageCodec,
    StageContext, StageOutput, Supervisor,
};
use towerlens_core::freq::{features_of_goertzel_par, representative_towers};
use towerlens_core::identifier::{IdentifiedPatterns, IdentifierConfig, PatternIdentifier};
use towerlens_core::labeling::{cluster_of_kind, label_clusters_parts, GeoLabels};
use towerlens_core::study::snapshot_from_parts;
use towerlens_core::{PartialStudyReport, Study, StudyConfig};
use towerlens_mobility::agents::{AgentConfig, AgentPopulation};
use towerlens_pipeline::feature::FeatureSpace;
use towerlens_pipeline::impute::ImputeConfig;
use towerlens_pipeline::normalize::NormalizedMatrix;
use towerlens_pipeline::vectorizer::{Vectorizer, VectorizerOptions};
use towerlens_trace::clean::clean_records;
use towerlens_trace::quarantine::{FaultPolicy, QuarantineReport};
use towerlens_trace::record::{LogRecord, RecordReader};
use towerlens_trace::time::TraceWindow;

use crate::files::{
    read_pois, read_towers, read_truth, write_pois, write_towers, write_truth, FileError, TowerRow,
};

/// Options for dataset generation.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// RNG seed.
    pub seed: u64,
    /// Number of towers.
    pub towers: usize,
    /// Number of subscribers.
    pub agents: usize,
    /// Days of logs (day 0 is a Monday).
    pub days: usize,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            seed: 42,
            towers: 120,
            agents: 800,
            days: 14,
        }
    }
}

/// Generates a dataset directory (`logs.tsv`, `towers.tsv`,
/// `pois.tsv`, `truth.tsv`). Returns the number of log records
/// written.
///
/// # Errors
/// Generation and I/O failures.
pub fn generate_dataset(
    dir: &Path,
    options: &GenOptions,
) -> Result<usize, Box<dyn std::error::Error>> {
    std::fs::create_dir_all(dir)?;
    let mut city_cfg = CityConfig::tiny(options.seed);
    city_cfg.n_towers = options.towers;
    let city = generate(&city_cfg)?;
    let window = TraceWindow::days(options.days);
    let population = AgentPopulation::generate(
        &city,
        AgentConfig {
            seed: options.seed,
            n_agents: options.agents,
            sessions_per_hour: 2.4,
            ..AgentConfig::default()
        },
    );
    let records = population.emit_logs(&city, &window);

    // logs.tsv — streamed, operator exports are large.
    let mut w = BufWriter::new(std::fs::File::create(dir.join("logs.tsv"))?);
    for r in &records {
        writeln!(w, "{}", r.to_line())?;
    }
    w.flush()?;

    let towers: Vec<TowerRow> = city
        .towers()
        .iter()
        .map(|t| TowerRow {
            id: t.id,
            position: t.position,
            address: t.address.clone(),
        })
        .collect();
    write_towers(&dir.join("towers.tsv"), &towers)?;
    write_pois(&dir.join("pois.tsv"), city.pois().pois())?;
    let truth: Vec<(usize, RegionKind)> =
        city.towers().iter().map(|t| (t.id, t.kind_truth)).collect();
    write_truth(&dir.join("truth.tsv"), &truth)?;
    Ok(records.len())
}

/// Options for analysis.
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Days covered by the logs (the binning window).
    pub days: usize,
    /// Worker threads for the vectorizer (0 = auto).
    pub threads: usize,
    /// Maximum tolerated fraction of quarantined (malformed or
    /// unknown-cell) records before ingestion fails closed.
    pub max_bad_fraction: f64,
    /// Detect per-tower outage windows and impute them from the
    /// paper's daily/weekly periodicity.
    pub impute: bool,
    /// Representation the cluster stage sees (`--feature-space`):
    /// raw traffic vectors, 6-dim spectral projections, or auto
    /// (spectral at large tower counts, raw below).
    pub feature_space: FeatureSpace,
    /// Write the versioned query artifact here after a successful
    /// run (`--snapshot`). Not part of the checkpoint fingerprint —
    /// it does not shape any number.
    pub snapshot: Option<PathBuf>,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            days: 14,
            threads: 0,
            max_bad_fraction: FaultPolicy::default().max_bad_fraction,
            impute: false,
            feature_space: FeatureSpace::Auto,
            snapshot: None,
        }
    }
}

impl AnalyzeOptions {
    fn policy(&self) -> FaultPolicy {
        FaultPolicy {
            max_bad_fraction: self.max_bad_fraction,
            ..FaultPolicy::default()
        }
    }

    fn impute_config(&self) -> Option<ImputeConfig> {
        self.impute.then(ImputeConfig::default)
    }
}

/// What `analyze` found.
#[derive(Debug)]
pub struct AnalyzeSummary {
    /// Records parsed from `logs.tsv`.
    pub records: usize,
    /// Records surviving cleaning.
    pub kept: usize,
    /// Number of patterns found.
    pub k: usize,
    /// Per-cluster labels (canonical kinds); `None` when the optional
    /// labelling stage failed and the run degraded.
    pub labels: Option<Vec<RegionKind>>,
    /// Per-cluster shares.
    pub shares: Vec<f64>,
    /// Adjusted Rand index vs `truth.tsv`, when present.
    pub ari_vs_truth: Option<f64>,
}

/// Everything the analyze stages exchange: one variant per stage.
#[derive(Debug)]
enum CliArtifact {
    /// `ingest-logs` — parsed log records (malformed-line counts are
    /// reported as a card, not carried forward).
    Logs(Vec<LogRecord>),
    /// `ingest-geo` — tower rows and POIs from disk.
    Geo {
        towers: Vec<TowerRow>,
        pois: Vec<Poi>,
    },
    /// `clean` — records surviving cleaning, plus the parsed total
    /// (the counts must survive a resume, so they travel forward).
    Clean {
        records: Vec<LogRecord>,
        parsed: usize,
    },
    /// `vectorize` — z-scored vectors plus record counts.
    Vectors {
        normalized: NormalizedMatrix,
        parsed: usize,
        cleaned: usize,
    },
    /// `cluster` — the identified patterns.
    Patterns(IdentifiedPatterns),
    /// `label` — geographic labels.
    Labels(GeoLabels),
    /// `score` — adjusted Rand index vs `truth.tsv`, when present.
    Score(Option<f64>),
}

// ---- typed artifact fetch helpers -------------------------------

fn geo_parts<'a>(
    ctx: &StageContext<'a, CliArtifact>,
) -> Result<(&'a Vec<TowerRow>, &'a Vec<Poi>), EngineError> {
    match ctx.artifact("ingest-geo")? {
        CliArtifact::Geo { towers, pois } => Ok((towers, pois)),
        _ => Err(ctx.fail("artifact `ingest-geo` has unexpected type")),
    }
}

fn vectors_parts<'a>(
    ctx: &StageContext<'a, CliArtifact>,
) -> Result<&'a NormalizedMatrix, EngineError> {
    match ctx.artifact("vectorize")? {
        CliArtifact::Vectors { normalized, .. } => Ok(normalized),
        _ => Err(ctx.fail("artifact `vectorize` has unexpected type")),
    }
}

fn patterns_part<'a>(
    ctx: &StageContext<'a, CliArtifact>,
) -> Result<&'a IdentifiedPatterns, EngineError> {
    match ctx.artifact("cluster")? {
        CliArtifact::Patterns(p) => Ok(p),
        _ => Err(ctx.fail("artifact `cluster` has unexpected type")),
    }
}

// ---- stages -----------------------------------------------------

struct IngestLogsStage {
    dir: PathBuf,
    policy: FaultPolicy,
}

impl Stage<CliArtifact> for IngestLogsStage {
    fn name(&self) -> &'static str {
        "ingest-logs"
    }
    fn run(
        &self,
        ctx: &StageContext<'_, CliArtifact>,
    ) -> Result<StageOutput<CliArtifact>, EngineError> {
        // Stream the log file: operator exports don't fit in memory.
        // Malformed lines are quarantined per category rather than
        // silently counted; the policy decides when the feed itself is
        // too broken to trust.
        let file = std::fs::File::open(self.dir.join("logs.tsv")).map_err(|e| ctx.fail(e))?;
        let mut records = Vec::new();
        let mut quarantine = QuarantineReport::default();
        for item in RecordReader::new(std::io::BufReader::new(file)) {
            quarantine.total += 1;
            match item.map_err(|e| ctx.fail(e))? {
                Ok(r) => records.push(r),
                Err(e) => quarantine.note(&e),
            }
        }
        towerlens_trace::quarantine::record_ingest_metrics(&quarantine);
        self.policy.enforce(&quarantine).map_err(|e| ctx.fail(e))?;
        if records.is_empty() {
            return Err(ctx.fail(FileError::Malformed {
                file: "logs.tsv",
                lines: quarantine.bad(),
            }));
        }
        if !quarantine.is_clean() {
            eprintln!("warning: ingest-logs: {}", quarantine.summary());
        }
        let (n, bad) = (records.len() as u64, quarantine.bad() as u64);
        Ok(StageOutput::new(CliArtifact::Logs(records))
            .with_card("records", n)
            .with_card("quarantined", bad))
    }
}

struct IngestGeoStage {
    dir: PathBuf,
}

impl Stage<CliArtifact> for IngestGeoStage {
    fn name(&self) -> &'static str {
        "ingest-geo"
    }
    fn run(
        &self,
        ctx: &StageContext<'_, CliArtifact>,
    ) -> Result<StageOutput<CliArtifact>, EngineError> {
        let (towers, _) = read_towers(&self.dir.join("towers.tsv")).map_err(|e| ctx.fail(e))?;
        let (pois, _) = read_pois(&self.dir.join("pois.tsv")).map_err(|e| ctx.fail(e))?;
        let (nt, np) = (towers.len() as u64, pois.len() as u64);
        Ok(StageOutput::new(CliArtifact::Geo { towers, pois })
            .with_card("towers", nt)
            .with_card("pois", np))
    }
}

struct CleanStage {
    days: usize,
}

impl Stage<CliArtifact> for CleanStage {
    fn name(&self) -> &'static str {
        "clean"
    }
    fn deps(&self) -> &'static [&'static str] {
        &["ingest-logs"]
    }
    fn run(
        &self,
        ctx: &StageContext<'_, CliArtifact>,
    ) -> Result<StageOutput<CliArtifact>, EngineError> {
        let CliArtifact::Logs(records) = ctx.artifact("ingest-logs")? else {
            return Err(ctx.fail("artifact `ingest-logs` has unexpected type"));
        };
        let window = TraceWindow::days(self.days);
        // Guard the classic footgun: a window longer than the data pads
        // zero bins, which silently wrecks the z-scored clustering.
        let last_end = records.iter().map(|r| r.end_s).max().unwrap_or(0);
        if last_end < window.start_s + (window.end_s() - window.start_s) * 4 / 5 {
            eprintln!(
                "warning: logs end at {}s but the --days {} window runs to {}s; \
                 trailing bins will be zero — pass a --days matching the data",
                last_end,
                self.days,
                window.end_s()
            );
        }
        let (clean, _report) = clean_records(records);
        let (parsed, kept) = (records.len(), clean.len());
        Ok(StageOutput::new(CliArtifact::Clean {
            records: clean,
            parsed,
        })
        .with_card("kept", kept as u64)
        .with_card("dropped", (parsed - kept) as u64))
    }
}

struct CliVectorizeStage {
    days: usize,
    threads: usize,
    policy: FaultPolicy,
    impute: Option<ImputeConfig>,
}

impl Stage<CliArtifact> for CliVectorizeStage {
    fn name(&self) -> &'static str {
        "vectorize"
    }
    fn deps(&self) -> &'static [&'static str] {
        &["clean"]
    }
    fn run(
        &self,
        ctx: &StageContext<'_, CliArtifact>,
    ) -> Result<StageOutput<CliArtifact>, EngineError> {
        let CliArtifact::Clean { records, parsed } = ctx.artifact("clean")? else {
            return Err(ctx.fail("artifact `clean` has unexpected type"));
        };
        let n_towers = records
            .iter()
            .map(|r| r.cell_id as usize + 1)
            .max()
            .unwrap_or(0);
        let vectorizer = Vectorizer::new(TraceWindow::days(self.days), self.threads);
        let options = VectorizerOptions {
            policy: self.policy,
            impute: self.impute,
        };
        let output = vectorizer
            .run_with(records, n_towers, &options)
            .map_err(|e| ctx.fail(e))?;
        if !output.quarantine.is_clean() {
            eprintln!("warning: vectorize: {}", output.quarantine.summary());
        }
        let kept = output.normalized.kept_ids.len() as u64;
        let imputed = output.normalized.imputed_bins() as u64;
        let quarantined = output.quarantine.bad() as u64;
        Ok(StageOutput::new(CliArtifact::Vectors {
            normalized: output.normalized,
            parsed: *parsed,
            cleaned: records.len(),
        })
        .with_card("kept", kept)
        .with_card("records", records.len() as u64)
        .with_card("quarantined", quarantined)
        .with_card("imputed", imputed))
    }
    fn codec(&self) -> Option<&dyn StageCodec<CliArtifact>> {
        Some(&CliVectorsCodec)
    }
}

struct CliClusterStage {
    threads: usize,
    /// Reconstructs the binning window — the source of the principal
    /// bins when the feature space resolves to spectral.
    days: usize,
    feature_space: FeatureSpace,
}

impl Stage<CliArtifact> for CliClusterStage {
    fn name(&self) -> &'static str {
        "cluster"
    }
    fn deps(&self) -> &'static [&'static str] {
        &["vectorize"]
    }
    fn run(
        &self,
        ctx: &StageContext<'_, CliArtifact>,
    ) -> Result<StageOutput<CliArtifact>, EngineError> {
        let normalized = vectors_parts(ctx)?;
        let identifier = PatternIdentifier::new(IdentifierConfig {
            threads: self.threads,
            feature_space: self.feature_space,
            ..IdentifierConfig::default()
        });
        let patterns = identifier
            .identify_in(&normalized.vectors, Some(&TraceWindow::days(self.days)))
            .map_err(|e| ctx.fail(e))?;
        let (n, k) = (normalized.vectors.len() as u64, patterns.k as u64);
        Ok(StageOutput::new(CliArtifact::Patterns(patterns))
            .with_card("vectors", n)
            .with_card("k", k))
    }
    fn codec(&self) -> Option<&dyn StageCodec<CliArtifact>> {
        Some(&CliPatternsCodec)
    }
}

struct CliLabelStage {
    threads: usize,
}

impl Stage<CliArtifact> for CliLabelStage {
    fn name(&self) -> &'static str {
        "label"
    }
    fn deps(&self) -> &'static [&'static str] {
        &["ingest-geo", "vectorize", "cluster"]
    }
    // Labelling enriches the clustering; a bad POI file should not
    // take the whole analysis down.
    fn optional(&self) -> bool {
        true
    }
    fn run(
        &self,
        ctx: &StageContext<'_, CliArtifact>,
    ) -> Result<StageOutput<CliArtifact>, EngineError> {
        let (towers, pois) = geo_parts(ctx)?;
        let normalized = vectors_parts(ctx)?;
        let patterns = patterns_part(ctx)?;
        // Geographic labelling from files (no synthetic City needed).
        let n_towers = towers.iter().map(|t| t.id + 1).max().unwrap_or(0);
        let mut positions = vec![GeoPoint::new(0.0, 0.0); n_towers];
        let mut bounds = BoundingBox::empty();
        for t in towers {
            positions[t.id] = t.position;
            bounds.include(&t.position);
        }
        let poi_index = PoiIndex::build(pois.clone());
        let geo = label_clusters_parts(
            &positions,
            &bounds,
            &poi_index,
            &patterns.clustering,
            &normalized.kept_ids,
            self.threads,
        )
        .map_err(|e| ctx.fail(e))?;
        let clusters = geo.labels.len() as u64;
        Ok(StageOutput::new(CliArtifact::Labels(geo)).with_card("clusters", clusters))
    }
}

struct ScoreStage {
    dir: PathBuf,
}

impl Stage<CliArtifact> for ScoreStage {
    fn name(&self) -> &'static str {
        "score"
    }
    fn deps(&self) -> &'static [&'static str] {
        &["ingest-geo", "vectorize", "cluster"]
    }
    // Scoring is diagnostic: a damaged truth file degrades the run
    // instead of failing it.
    fn optional(&self) -> bool {
        true
    }
    fn run(
        &self,
        ctx: &StageContext<'_, CliArtifact>,
    ) -> Result<StageOutput<CliArtifact>, EngineError> {
        let (towers, _) = geo_parts(ctx)?;
        let normalized = vectors_parts(ctx)?;
        let patterns = patterns_part(ctx)?;
        let truth_path = self.dir.join("truth.tsv");
        if !truth_path.exists() {
            return Ok(StageOutput::new(CliArtifact::Score(None)).with_card("truth", 0));
        }
        let n_towers = towers.iter().map(|t| t.id + 1).max().unwrap_or(0);
        let (truth_rows, _) = read_truth(&truth_path).map_err(|e| ctx.fail(e))?;
        let mut by_id = vec![None; n_towers];
        for (id, kind) in truth_rows {
            if id < n_towers {
                by_id[id] = Some(kind);
            }
        }
        let truth_labels: Option<Vec<usize>> = normalized
            .kept_ids
            .iter()
            .map(|&id| by_id.get(id).copied().flatten().map(|k| k.index()))
            .collect();
        let ari = match truth_labels {
            Some(labels) => {
                // Compact to consecutive labels for the comparison.
                let mut map = std::collections::HashMap::new();
                let mut next = 0usize;
                let compact: Vec<usize> = labels
                    .into_iter()
                    .map(|l| {
                        *map.entry(l).or_insert_with(|| {
                            let v = next;
                            next += 1;
                            v
                        })
                    })
                    .collect();
                let truth_clustering = Clustering::from_labels(compact).map_err(|e| ctx.fail(e))?;
                Some(
                    adjusted_rand_index(&patterns.clustering, &truth_clustering)
                        .map_err(|e| ctx.fail(e))?,
                )
            }
            None => None,
        };
        let found = ari.is_some() as u64;
        Ok(StageOutput::new(CliArtifact::Score(ari)).with_card("truth", found))
    }
}

// ---- codecs -----------------------------------------------------

struct CliVectorsCodec;

impl StageCodec<CliArtifact> for CliVectorsCodec {
    fn encode(&self, artifact: &CliArtifact, out: &mut String) -> Result<(), String> {
        let CliArtifact::Vectors {
            normalized,
            parsed,
            cleaned,
        } = artifact
        else {
            return Err("expected a vectors artifact".to_string());
        };
        out.push_str(&format!("counts {parsed} {cleaned}\n"));
        encode_normalized(normalized, out);
        Ok(())
    }

    fn decode(&self, body: &mut BodyReader<'_>) -> Result<CliArtifact, String> {
        let mut fields = body.tagged("counts")?.split_whitespace();
        let parsed = decode_usize(fields.next().ok_or("missing parsed count")?)?;
        let cleaned = decode_usize(fields.next().ok_or("missing cleaned count")?)?;
        let normalized = decode_normalized(body)?;
        Ok(CliArtifact::Vectors {
            normalized,
            parsed,
            cleaned,
        })
    }
}

struct CliPatternsCodec;

impl StageCodec<CliArtifact> for CliPatternsCodec {
    fn encode(&self, artifact: &CliArtifact, out: &mut String) -> Result<(), String> {
        let CliArtifact::Patterns(p) = artifact else {
            return Err("expected a pattern-set artifact".to_string());
        };
        encode_patterns(p, out);
        Ok(())
    }

    fn decode(&self, body: &mut BodyReader<'_>) -> Result<CliArtifact, String> {
        Ok(CliArtifact::Patterns(decode_patterns(body)?))
    }
}

// ---- drivers ----------------------------------------------------

fn analyze_graph(dir: &Path, options: &AnalyzeOptions) -> Graph<CliArtifact> {
    Graph::new()
        .add_stage(IngestLogsStage {
            dir: dir.to_path_buf(),
            policy: options.policy(),
        })
        .add_stage(IngestGeoStage {
            dir: dir.to_path_buf(),
        })
        .add_stage(CleanStage { days: options.days })
        .add_stage(CliVectorizeStage {
            days: options.days,
            threads: options.threads,
            policy: options.policy(),
            impute: options.impute_config(),
        })
        .add_stage(CliClusterStage {
            threads: options.threads,
            days: options.days,
            feature_space: options.feature_space,
        })
        .add_stage(CliLabelStage {
            threads: options.threads,
        })
        .add_stage(ScoreStage {
            dir: dir.to_path_buf(),
        })
}

/// The checkpoint fingerprint of an analyze invocation: the options
/// that shape the numbers plus the sizes of the input files, so an
/// edited dataset or changed window invalidates the cache. The thread
/// count is deliberately absent — every parallel path is bit-identical
/// to serial, so checkpoints written at one `--threads` resume at any
/// other.
///
/// # Errors
/// I/O failures reading the input file metadata.
pub fn analyze_fingerprint(dir: &Path, options: &AnalyzeOptions) -> std::io::Result<u64> {
    let mut s = format!(
        "analyze v4 days={} maxbad={} impute={} space={}",
        options.days, options.max_bad_fraction, options.impute, options.feature_space
    );
    for f in ["logs.tsv", "towers.tsv", "pois.tsv"] {
        let len = std::fs::metadata(dir.join(f))?.len();
        s.push_str(&format!(" {f}={len}"));
    }
    Ok(fnv1a64(s.as_bytes()))
}

/// Analyzes a dataset directory: parse → clean → vectorize → cluster
/// → label; scores against `truth.tsv` when present.
///
/// # Errors
/// I/O, parse, and analysis failures.
pub fn analyze(
    dir: &Path,
    options: &AnalyzeOptions,
) -> Result<AnalyzeSummary, Box<dyn std::error::Error>> {
    Ok(analyze_instrumented(dir, options, None)?.0)
}

/// As [`analyze`], but also returns the per-stage [`RunReport`] and,
/// with `resume`, persists/reloads the vectorize and cluster stages
/// in that checkpoint directory.
///
/// # Errors
/// As [`analyze`], plus checkpoint I/O and corruption errors.
pub fn analyze_instrumented(
    dir: &Path,
    options: &AnalyzeOptions,
    resume: Option<&Path>,
) -> Result<(AnalyzeSummary, RunReport), Box<dyn std::error::Error>> {
    analyze_instrumented_with(dir, options, resume, &Supervisor::default())
}

/// As [`analyze_instrumented`], under a [`Supervisor`]: transient
/// stage and checkpoint-I/O failures retry with deterministic seeded
/// backoff, and stages may carry a watchdog wall-time budget. This is
/// what `analyze --retries N --stage-timeout-ms MS` runs.
///
/// # Errors
/// As [`analyze_instrumented`], plus stage-timeout errors.
pub fn analyze_instrumented_with(
    dir: &Path,
    options: &AnalyzeOptions,
    resume: Option<&Path>,
    supervisor: &Supervisor,
) -> Result<(AnalyzeSummary, RunReport), Box<dyn std::error::Error>> {
    let store = match resume {
        Some(ckpt_dir) => Some(CheckpointStore::open(
            ckpt_dir,
            analyze_fingerprint(dir, options)?,
        )?),
        None => None,
    };
    let mut outcome = analyze_graph(dir, options).run_with(store.as_ref(), supervisor)?;
    let CliArtifact::Vectors {
        normalized,
        parsed,
        cleaned,
    } = outcome.take("vectorize")?
    else {
        return Err("artifact `vectorize` has unexpected type".into());
    };
    let CliArtifact::Patterns(patterns) = outcome.take("cluster")? else {
        return Err("artifact `cluster` has unexpected type".into());
    };
    // The labelling and scoring stages are optional: when one failed
    // (and was reported as such) its artifact is simply absent, and the
    // summary degrades rather than erroring.
    let labels = match outcome.take("label") {
        Ok(CliArtifact::Labels(geo)) => Some(geo.labels),
        Ok(_) => return Err("artifact `label` has unexpected type".into()),
        Err(_) => None,
    };
    let ari_vs_truth = match outcome.take("score") {
        Ok(CliArtifact::Score(ari)) => ari,
        Ok(_) => return Err("artifact `score` has unexpected type".into()),
        Err(_) => None,
    };
    if let Some(path) = &options.snapshot {
        let fingerprint = analyze_fingerprint(dir, options)?;
        let snapshot = analyze_snapshot(
            &normalized,
            &patterns,
            labels.as_deref(),
            options,
            fingerprint,
        )?;
        towerlens_artifact::write_snapshot(path, &snapshot)?;
    }
    Ok((
        AnalyzeSummary {
            records: parsed,
            kept: cleaned,
            k: patterns.k,
            labels,
            shares: patterns.clustering.shares(),
            ari_vs_truth,
        },
        outcome.report,
    ))
}

/// Assembles the versioned query artifact from an analyze run's
/// working set: frequency features are recomputed with the same
/// Goertzel extractor the study uses (bit-identical at any thread
/// count), and the primary-component basis is frozen only when the
/// geographic labels cover all four pure kinds. `analyze` has no
/// decomposer (it lacks the city ground truth), so the decomposition
/// section is empty and `query decompose` solves live against the
/// frozen basis.
fn analyze_snapshot(
    normalized: &NormalizedMatrix,
    patterns: &IdentifiedPatterns,
    labels: Option<&[RegionKind]>,
    options: &AnalyzeOptions,
    fingerprint: u64,
) -> Result<towerlens_artifact::Snapshot, Box<dyn std::error::Error>> {
    let window = TraceWindow::days(options.days);
    let features = features_of_goertzel_par(&normalized.vectors, &window, options.threads)?;
    let representatives = labels.and_then(|labels| {
        let pure: Option<Vec<usize>> = RegionKind::PURE
            .iter()
            .map(|&k| cluster_of_kind(labels, k))
            .collect();
        match pure {
            Some(pure) if pure.len() == 4 => {
                representative_towers(&features, &patterns.clustering, &pure)
                    .ok()
                    .map(|reps| [reps[0], reps[1], reps[2], reps[3]])
            }
            _ => None,
        }
    });
    Ok(snapshot_from_parts(
        &window,
        &normalized.kept_ids,
        &normalized.vectors,
        patterns,
        labels,
        &features,
        representatives,
        &[],
        fingerprint,
        options.feature_space,
    )?)
}

/// Parses a scale name (`tiny` / `small` / `medium` / `paper`) into a
/// study configuration.
///
/// # Errors
/// A usage line for an unknown scale name.
pub fn study_config(scale: &str, seed: u64) -> Result<StudyConfig, String> {
    match scale {
        "tiny" => Ok(StudyConfig::tiny(seed)),
        "small" => Ok(StudyConfig::small(seed)),
        "medium" => Ok(StudyConfig::medium(seed)),
        "paper" => Ok(StudyConfig::paper_scale(seed)),
        other => Err(format!(
            "unknown scale `{other}` (expected tiny|small|medium|paper)"
        )),
    }
}

/// Runs the staged end-to-end study, optionally resuming from (and
/// writing to) a checkpoint directory.
///
/// Optional enrichment stages (labelling, time-domain, frequency,
/// decomposition) that fail are reported and pruned rather than
/// aborting: inspect [`PartialStudyReport::is_complete`] and
/// [`RunReport::degraded`] on the way out.
///
/// # Errors
/// Failures of the required spine (generation through clustering) and
/// checkpoint I/O failures.
pub fn run_study(
    config: StudyConfig,
    resume: Option<&Path>,
) -> Result<(PartialStudyReport, RunReport), Box<dyn std::error::Error>> {
    run_study_with(config, resume, &Supervisor::default())
}

/// As [`run_study`], under a [`Supervisor`] — retries, per-stage
/// deadlines, and the circuit breaker on top of the resilient study
/// path. This is what `study --retries N --stage-timeout-ms MS` runs.
///
/// # Errors
/// As [`run_study`], plus stage-timeout errors from required stages.
pub fn run_study_with(
    config: StudyConfig,
    resume: Option<&Path>,
    supervisor: &Supervisor,
) -> Result<(PartialStudyReport, RunReport), Box<dyn std::error::Error>> {
    let study = Study::new(config);
    let store = match resume {
        Some(dir) => Some(CheckpointStore::open(dir, study.checkpoint_fingerprint())?),
        None => None,
    };
    Ok(study.run_resilient_with(store.as_ref(), supervisor)?)
}

/// One `doctor` verdict: the checkpoint's file name and its fsck
/// outcome.
pub type DoctorRow = (String, Result<FsckInfo, CheckpointError>);

/// Fscks every `*.ckpt` file in a checkpoint directory, in name order.
///
/// Returns one `(file name, verdict)` row per checkpoint; a damaged
/// file is a per-file [`CheckpointError`], not a hard error, so one
/// corrupt checkpoint never hides the health of the others. With
/// `expected_fingerprint`, every file is additionally pinned to that
/// configuration fingerprint, so stale checkpoints from an older
/// config surface as damage instead of passing as healthy files.
///
/// # Errors
/// Only directory-level I/O failures (missing or unreadable dir).
pub fn doctor_checkpoints(
    dir: &Path,
    expected_fingerprint: Option<u64>,
) -> Result<Vec<DoctorRow>, std::io::Error> {
    fn scan(dir: &Path, prefix: &str, fp: Option<u64>) -> Result<Vec<DoctorRow>, std::io::Error> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|entry| {
                let path = entry.ok()?.path();
                (path.extension().and_then(|e| e.to_str()) == Some("ckpt")).then_some(path)
            })
            .collect();
        paths.sort();
        Ok(paths
            .into_iter()
            .map(|path| {
                let name = path
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                (format!("{prefix}{name}"), fsck_file(&path, fp))
            })
            .collect())
    }
    let mut rows = scan(dir, "", expected_fingerprint)?;
    // A serve data directory keeps its snapshots under `snap/`; fsck
    // them in the same sweep. Snapshot fingerprints hash the serve
    // window, not the analyze config, so `--fingerprint` pinning stays
    // scoped to the top-level files.
    let snap = dir.join(towerlens_serve::SNAP_DIR);
    if snap.is_dir() {
        rows.extend(scan(&snap, "snap/", None)?);
    }
    Ok(rows)
}

/// One `doctor` artifact verdict: the artifact's file name and its
/// fsck outcome.
pub type ArtifactRow = (String, Result<ArtifactFsck, ArtifactError>);

/// Fscks every `*.artifact` file in a directory, in name order.
///
/// As with [`doctor_checkpoints`], a damaged artifact is a per-file
/// verdict, never a hard error. A missing directory is an I/O error;
/// a directory with no artifacts is an empty (healthy) report.
///
/// # Errors
/// Only directory-level I/O failures.
pub fn doctor_artifacts(dir: &Path) -> Result<Vec<ArtifactRow>, std::io::Error> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            (path.extension().and_then(|e| e.to_str()) == Some("artifact")).then_some(path)
        })
        .collect();
    paths.sort();
    Ok(paths
        .into_iter()
        .map(|path| {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            (name, towerlens_artifact::fsck_artifact(&path))
        })
        .collect())
}

/// `doctor`'s three-way verdict for one inspected file.
///
/// The exit-code contract hangs off this: *degraded but readable*
/// states (a stale checkpoint from an older configuration, a WAL
/// segment with a tolerated torn tail, an artifact carrying only
/// unknown extra sections) warn but exit 0 — they are expected
/// operational states, not damage. Only [`Health::Corrupt`] (checksum
/// or structural failure) makes `doctor` exit 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Fully intact.
    Healthy,
    /// Readable, but in a state the operator should know about.
    Degraded,
    /// Damaged: checksum mismatch, truncation, or structural rot.
    Corrupt,
}

/// Classifies a checkpoint fsck verdict. A fingerprint mismatch means
/// the file is *stale* — internally consistent, written by another
/// configuration — which is degraded, not corrupt. Everything else
/// that errors is damage.
pub fn checkpoint_health(verdict: &Result<FsckInfo, CheckpointError>) -> Health {
    match verdict {
        Ok(_) => Health::Healthy,
        Err(CheckpointError::FingerprintMismatch { .. }) => Health::Degraded,
        Err(_) => Health::Corrupt,
    }
}

/// Classifies a WAL segment fsck row. A torn tail on an unsealed
/// segment is the documented crash signature the replayer tolerates —
/// degraded. A structural error is corruption.
pub fn wal_health(row: &towerlens_serve::WalSegmentFsck) -> Health {
    if row.error.is_some() {
        Health::Corrupt
    } else if row.torn_tail {
        Health::Degraded
    } else {
        Health::Healthy
    }
}

/// Classifies an artifact fsck verdict. Header-level failures and any
/// section checksum mismatch (or a semantic decode failure) are
/// corruption; an artifact whose only oddity is unknown extra
/// sections — the forward-compatibility path — is degraded.
pub fn artifact_health(verdict: &Result<ArtifactFsck, ArtifactError>) -> Health {
    match verdict {
        Err(_) => Health::Corrupt,
        Ok(fsck) if !fsck.healthy() => Health::Corrupt,
        Ok(fsck) if fsck.has_unknown_sections() => Health::Degraded,
        Ok(_) => Health::Healthy,
    }
}

/// The `doctor` exit code over every inspected file: 1 iff anything
/// is [`Health::Corrupt`]; degraded states warn but exit 0.
pub fn doctor_exit(healths: &[Health]) -> i32 {
    i32::from(healths.contains(&Health::Corrupt))
}

impl Health {
    /// The stable lower-case label used by `doctor --json` and the
    /// summary line.
    pub fn label(self) -> &'static str {
        match self {
            Health::Healthy => "healthy",
            Health::Degraded => "degraded",
            Health::Corrupt => "corrupt",
        }
    }
}

/// One row of `doctor`'s flat verdict table: target kind
/// (`checkpoint` / `wal` / `artifact` / `pointer`), file name,
/// three-way health, and a human-readable detail (empty when
/// healthy).
pub type DoctorVerdict = (&'static str, String, Health, String);

/// The detail string for a checkpoint verdict.
pub fn checkpoint_detail(verdict: &Result<FsckInfo, CheckpointError>) -> String {
    match verdict {
        Ok(_) => String::new(),
        Err(e) => e.to_string(),
    }
}

/// The detail string for a WAL segment fsck row.
pub fn wal_detail(row: &towerlens_serve::WalSegmentFsck) -> String {
    match &row.error {
        Some(e) => e.clone(),
        None if row.torn_tail => "torn tail dropped".to_string(),
        None => String::new(),
    }
}

/// The detail string for an artifact verdict: damaged sections and
/// the semantic error when unhealthy, the unknown-section note when
/// merely degraded, empty when healthy.
pub fn artifact_detail(verdict: &Result<ArtifactFsck, ArtifactError>) -> String {
    match verdict {
        Err(e) => e.to_string(),
        Ok(fsck) if !fsck.healthy() => {
            let mut parts: Vec<String> = fsck
                .sections
                .iter()
                .filter_map(|s| match &s.status {
                    towerlens_artifact::SectionStatus::ChecksumMismatch { .. } => {
                        Some(format!("section `{}` checksum", s.tag))
                    }
                    _ => None,
                })
                .collect();
            if let Some(semantic) = &fsck.semantic {
                parts.push(semantic.clone());
            }
            parts.join("; ")
        }
        Ok(fsck) if fsck.has_unknown_sections() => "unknown section(s) tolerated".to_string(),
        Ok(_) => String::new(),
    }
}

/// The verdict for the generation store's `CURRENT` pointer, when the
/// directory has one: `None` when absent, otherwise the pointer's
/// health against the already-fsck'd artifact rows. A pointer naming
/// a missing file is corrupt; one naming an artifact that fails its
/// own fsck is degraded — the file is intact and `query --watch`
/// falls back to the last good generation, which is exactly the
/// degraded-mode contract.
pub fn doctor_pointer(dir: &Path, artifacts: &[ArtifactRow]) -> Option<DoctorVerdict> {
    let target = match towerlens_artifact::read_current(dir) {
        Ok(Some(target)) => target,
        Ok(None) => return None,
        Err(e) => {
            return Some((
                "pointer",
                towerlens_artifact::CURRENT_POINTER.to_string(),
                Health::Corrupt,
                e.to_string(),
            ))
        }
    };
    let (health, detail) = match artifacts.iter().find(|(name, _)| *name == target) {
        None => (
            Health::Corrupt,
            format!("names missing generation `{target}`"),
        ),
        Some((_, verdict)) => match artifact_health(verdict) {
            Health::Corrupt => (
                Health::Degraded,
                format!("names `{target}` which fails fsck; query --watch serves last good"),
            ),
            _ => (Health::Healthy, format!("-> {target}")),
        },
    };
    Some((
        "pointer",
        towerlens_artifact::CURRENT_POINTER.to_string(),
        health,
        detail,
    ))
}

/// The final `doctor:` one-line summary over every inspected target.
pub fn doctor_summary(healths: &[Health]) -> String {
    let count = |h: Health| healths.iter().filter(|&&x| x == h).count();
    format!(
        "doctor: {} healthy, {} degraded, {} corrupt",
        count(Health::Healthy),
        count(Health::Degraded),
        count(Health::Corrupt)
    )
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the verdict table as a stable JSON document for scripting:
/// `{"dir": ..., "targets": [...], "summary": {...}}`, targets in
/// inspection order.
pub fn doctor_json(dir: &Path, verdicts: &[DoctorVerdict]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"dir\":\"{}\",\"targets\":[",
        json_escape(&dir.display().to_string())
    ));
    for (i, (kind, file, health, detail)) in verdicts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"kind\":\"{kind}\",\"file\":\"{}\",\"status\":\"{}\",\"detail\":\"{}\"}}",
            json_escape(file),
            health.label(),
            json_escape(detail)
        ));
    }
    let healths: Vec<Health> = verdicts.iter().map(|v| v.2).collect();
    let count = |h: Health| healths.iter().filter(|&&x| x == h).count();
    out.push_str(&format!(
        "],\"summary\":{{\"healthy\":{},\"degraded\":{},\"corrupt\":{}}}}}",
        count(Health::Healthy),
        count(Health::Degraded),
        count(Health::Corrupt)
    ));
    out
}

/// Convenience for tests: generate then analyze in one temp dir.
#[doc(hidden)]
pub fn roundtrip_in(dir: &Path) -> Result<AnalyzeSummary, Box<dyn std::error::Error>> {
    generate_dataset(dir, &GenOptions::default())?;
    analyze(dir, &AnalyzeOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use towerlens_core::StageStatus;

    #[test]
    fn gen_then_analyze_roundtrip() {
        let dir = std::env::temp_dir().join("towerlens-cli-roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let options = GenOptions {
            seed: 5,
            towers: 80,
            agents: 500,
            days: 7,
        };
        let written = generate_dataset(&dir, &options).expect("gen");
        assert!(written > 1_000, "only {written} records");
        for f in ["logs.tsv", "towers.tsv", "pois.tsv", "truth.tsv"] {
            assert!(dir.join(f).exists(), "{f} missing");
        }
        let summary = analyze(
            &dir,
            &AnalyzeOptions {
                days: 7,
                threads: 2,
                ..AnalyzeOptions::default()
            },
        )
        .expect("analyze");
        assert_eq!(summary.records, written);
        assert!(summary.kept <= summary.records);
        assert!(summary.k >= 2, "k = {}", summary.k);
        let labels = summary.labels.as_ref().expect("labelling healthy");
        assert_eq!(labels.len(), summary.k);
        let ari = summary.ari_vs_truth.expect("truth present");
        assert!(ari > 0.1, "ari {ari}");
        let share_sum: f64 = summary.shares.iter().sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn analyze_missing_dir_errors() {
        let dir = std::env::temp_dir().join("towerlens-cli-missing");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(analyze(&dir, &AnalyzeOptions::default()).is_err());
    }

    #[test]
    fn analyze_resume_skips_ingestion_and_matches_fresh_run() {
        let dir = std::env::temp_dir().join("towerlens-cli-resume");
        let ckpt = std::env::temp_dir().join("towerlens-cli-resume-ckpt");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&ckpt);
        generate_dataset(
            &dir,
            &GenOptions {
                seed: 5,
                towers: 80,
                agents: 500,
                days: 7,
            },
        )
        .expect("gen");
        let options = AnalyzeOptions {
            days: 7,
            threads: 2,
            ..AnalyzeOptions::default()
        };
        let (fresh, first) =
            analyze_instrumented(&dir, &options, Some(&ckpt)).expect("first analyze");
        assert_eq!(first.with_status(StageStatus::Cached), Vec::<&str>::new());

        let (resumed, second) =
            analyze_instrumented(&dir, &options, Some(&ckpt)).expect("second analyze");
        assert_eq!(
            second.with_status(StageStatus::Cached),
            vec!["vectorize", "cluster"]
        );
        // With the expensive middle cached, log ingestion and
        // cleaning are not demanded at all.
        assert_eq!(
            second.with_status(StageStatus::Skipped),
            vec!["ingest-logs", "clean"]
        );
        assert_eq!(resumed.records, fresh.records);
        assert_eq!(resumed.kept, fresh.kept);
        assert_eq!(resumed.k, fresh.k);
        assert_eq!(resumed.labels, fresh.labels);
        assert_eq!(
            resumed.ari_vs_truth.map(f64::to_bits),
            fresh.ari_vs_truth.map(f64::to_bits)
        );
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&ckpt);
    }

    #[test]
    fn study_config_parses_known_scales_only() {
        assert!(study_config("tiny", 7).is_ok());
        assert!(study_config("paper", 7).is_ok());
        let e = study_config("huge", 7).unwrap_err();
        assert!(e.contains("unknown scale `huge`"), "{e}");
    }

    /// The `doctor` exit-code matrix: degraded-but-readable states
    /// (stale checkpoints, torn WAL tails, unknown artifact sections)
    /// warn but exit 0; only corruption exits 1.
    #[test]
    fn doctor_exit_code_matrix() {
        use towerlens_serve::WalSegmentFsck;

        // Checkpoints: stale (wrong fingerprint) is degraded, damage
        // is corrupt.
        let stale = Err(CheckpointError::FingerprintMismatch {
            stage: "cluster".into(),
            expected: 1,
            found: 2,
        });
        let torn = Err(CheckpointError::Truncated {
            stage: "cluster".into(),
        });
        assert_eq!(checkpoint_health(&stale), Health::Degraded);
        assert_eq!(checkpoint_health(&torn), Health::Corrupt);

        // WAL segments: a tolerated torn tail is degraded; a
        // structural error is corrupt.
        let wal = |torn_tail: bool, error: Option<&str>| WalSegmentFsck {
            file: "wal-000001.log".into(),
            segment: 1,
            entries: 3,
            first_seq: Some(1),
            last_seq: Some(3),
            sealed: false,
            torn_tail,
            error: error.map(str::to_string),
        };
        assert_eq!(wal_health(&wal(false, None)), Health::Healthy);
        assert_eq!(wal_health(&wal(true, None)), Health::Degraded);
        assert_eq!(
            wal_health(&wal(false, Some("bad checksum"))),
            Health::Corrupt
        );
        // A structural error outranks a torn tail.
        assert_eq!(wal_health(&wal(true, Some("bad length"))), Health::Corrupt);

        // Artifacts: exercised through real files so the fsck verdicts
        // are the ones `doctor` actually sees.
        let dir = std::env::temp_dir().join("towerlens-doctor-matrix");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let snap = towerlens_artifact::format::sample_snapshot();
        let good = dir.join("good.artifact");
        towerlens_artifact::write_snapshot(&good, &snap).unwrap();
        let bad = dir.join("zz-bad.artifact");
        let mut bytes = snap.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&bad, &bytes).unwrap();
        let rows = doctor_artifacts(&dir).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "good.artifact");
        assert_eq!(artifact_health(&rows[0].1), Health::Healthy);
        assert_eq!(artifact_health(&rows[1].1), Health::Corrupt);

        // The exit code: 1 iff anything is corrupt.
        assert_eq!(doctor_exit(&[]), 0);
        assert_eq!(doctor_exit(&[Health::Healthy, Health::Degraded]), 0);
        assert_eq!(doctor_exit(&[Health::Degraded, Health::Corrupt]), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
