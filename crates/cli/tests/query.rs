//! Query-server contract tests: the golden equivalence against the
//! batch study report, the concurrency soak through the real binary,
//! and the doctor's artifact exit semantics.
//!
//! The golden test builds the tiny-study snapshot in-process and
//! checks that every `pattern` and stored `decompose` answer is
//! byte-for-byte what the batch [`PartialStudyReport`] says, and that
//! `topk` agrees with an independent brute-force O(n²) scan over the
//! same feature rows. The soak test drives the binary's `--stdin`
//! batch mode at 1 and 8 threads over 1,000 mixed requests and
//! demands byte-identical stdout plus exactly equal — and exactly
//! predicted — `query.*` counters. Doctor tests corrupt a written
//! artifact one byte at a time and check the degraded-vs-corrupt
//! exit-code split end to end.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};

use towerlens_artifact::{
    read_snapshot, render_decompose, render_topk, run_one, write_snapshot, QueryIndex,
};
use towerlens_cli::commands::{run_study, study_config};
use towerlens_core::{PartialStudyReport, Study};
use towerlens_pipeline::feature::FeatureSpace;

const BIN: &str = env!("CARGO_BIN_EXE_towerlens-cli");

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("towerlens-query-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn run_ok(args: &[&str]) -> String {
    let out = Command::new(BIN).args(args).output().expect("spawn CLI");
    assert!(
        out.status.success(),
        "`towerlens-cli {}` failed:\n{}",
        args.join(" "),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

fn run_stdin(args: &[&str], input: &str) -> Output {
    let mut child = Command::new(BIN)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn CLI");
    child
        .stdin
        .take()
        .expect("stdin handle")
        .write_all(input.as_bytes())
        .expect("write stdin");
    child.wait_with_output().expect("wait CLI")
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// A counter's value in a `--metrics` dump; 0 when never registered.
fn counter_value(metrics: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\":");
    match metrics.find(&needle) {
        None => 0,
        Some(at) => metrics[at + needle.len()..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .unwrap_or_else(|_| panic!("unparseable value for `{name}`")),
    }
}

/// The tiny study, its checkpoint fingerprint, and its snapshot —
/// the in-process reference every golden assertion derives from.
fn tiny_study() -> (PartialStudyReport, QueryIndex) {
    let config = study_config("tiny", 42).expect("tiny config");
    let fingerprint = Study::new(config.clone()).checkpoint_fingerprint();
    let (report, _) = run_study(config, None).expect("tiny study");
    let snapshot = report
        .to_snapshot(fingerprint, FeatureSpace::Auto)
        .expect("snapshot from tiny study");
    (report, QueryIndex::new(snapshot))
}

#[test]
fn golden_pattern_and_decompose_match_the_batch_study_report() {
    let (report, index) = tiny_study();
    let snap = index.snapshot();
    let geo = report.geo.as_ref().expect("tiny study labels clusters");

    // Every tower's `pattern` answer must be built from the exact
    // cluster label and region kind the batch report assigned — the
    // expectation string is assembled here from the report, not from
    // the artifact's render helper.
    for (idx, &id) in snap.tower_ids.iter().enumerate() {
        let cluster = report.patterns.clustering.labels[idx];
        let kind = geo.labels[cluster].label();
        let expect = format!("pattern {id} cluster={cluster} kind={kind}");
        let got = run_one(&index, &format!("pattern {id}")).expect("pattern answer");
        assert_eq!(got, expect, "tower {id}");
    }

    // Every decomposition row the batch study stored must be served
    // verbatim: same coefficients, same residual, same bytes.
    let (_, rows) = report
        .decomposition
        .as_ref()
        .expect("tiny study decomposes traffic");
    assert!(!rows.is_empty(), "tiny study stored no decomposition rows");
    for row in rows {
        let id = snap.tower_ids[row.vector_index];
        let expect = render_decompose(id, &row.coefficients, row.residual_sqr);
        let got = run_one(&index, &format!("decompose {id}")).expect("decompose answer");
        assert_eq!(got, expect, "tower {id}");
    }
}

#[test]
fn golden_topk_agrees_with_a_brute_force_scan() {
    let (_, index) = tiny_study();
    let snap = index.snapshot();
    let n = snap.tower_ids.len();
    let k = 8;
    assert!(n > k, "tiny study too small for a top-{k} check");

    for (idx, &id) in snap.tower_ids.iter().enumerate() {
        // Independent O(n²) reference: all pairwise distances over the
        // same 6-dim rows with the same metric, sorted by
        // (distance, index) — no shared scan code with `topk`.
        let mut all: Vec<(usize, f64)> = (0..n)
            .filter(|&j| j != idx)
            .map(|j| {
                (
                    j,
                    towerlens_cluster::distance::euclidean(&snap.features[idx], &snap.features[j]),
                )
            })
            .collect();
        all.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .expect("finite distance")
                .then(a.0.cmp(&b.0))
        });
        let expect: Vec<(u64, f64)> = all[..k]
            .iter()
            .map(|&(j, d)| (snap.tower_ids[j], d))
            .collect();

        let got = run_one(&index, &format!("topk {id} {k}")).expect("topk answer");
        assert_eq!(got, render_topk(id, &expect), "tower {id}");
    }
}

#[test]
fn one_shot_binary_output_matches_the_in_process_answer() {
    let dir = temp("oneshot");
    let (_, index) = tiny_study();
    let artifact = dir.join("study.artifact");
    write_snapshot(&artifact, index.snapshot()).expect("write artifact");

    let id = index.snapshot().tower_ids[0];
    let expect = run_one(&index, &format!("pattern {id}")).expect("pattern answer");
    let stdout = run_ok(&[
        "query",
        "--snapshot",
        artifact.to_str().unwrap(),
        "pattern",
        &id.to_string(),
    ]);
    assert_eq!(stdout, format!("{expect}\n"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn soak_batch_is_byte_identical_across_threads_with_exact_counters() {
    let dir = temp("soak");
    let artifact = dir.join("study.artifact");
    run_ok(&[
        "study",
        "--scale",
        "tiny",
        "--seed",
        "42",
        "--snapshot",
        artifact.to_str().unwrap(),
    ]);
    let snapshot = read_snapshot(&artifact).expect("read artifact back");
    let ids = snapshot.tower_ids.clone();
    let has_basis = snapshot.basis.is_some();
    let stored: std::collections::HashSet<u64> = snapshot
        .decompositions
        .iter()
        .map(|d| ids[d.vector_index])
        .collect();

    // A plausible day for `screen`: never asserted normal/anomalous
    // here, only that both thread counts say the same thing.
    let bins = snapshot.profile.bins_per_day;
    assert!(bins > 0, "tiny window must tile a day");
    let day_file = dir.join("day.tsv");
    let day: Vec<String> = (0..bins)
        .map(|b| format!("{:.3}", 100.0 + 10.0 * ((b as f64) * 0.7).sin()))
        .collect();
    std::fs::write(&day_file, day.join("\n") + "\n").expect("write day file");
    let day_path = day_file.to_str().unwrap().to_string();

    // 1,000 mixed requests with per-verb counts predicted up front.
    let total = 1_000usize;
    let (mut pattern, mut decompose, mut topk, mut screen, mut errors) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    let lines: Vec<String> = (0..total)
        .map(|i| {
            let id = ids[i % ids.len()];
            match i % 10 {
                0..=3 => {
                    pattern += 1;
                    format!("pattern {id}")
                }
                4 | 5 => {
                    topk += 1;
                    format!("topk {id} 5")
                }
                6 => {
                    screen += 1;
                    format!("screen {id} {day_path}")
                }
                7 => {
                    // Stored rows always answer; otherwise a live
                    // solve needs the frozen basis.
                    if has_basis || stored.contains(&id) {
                        decompose += 1;
                    } else {
                        errors += 1;
                    }
                    format!("decompose {id}")
                }
                8 => {
                    errors += 1;
                    "pattern 18446744073709551615".to_string()
                }
                _ => {
                    errors += 1;
                    format!("frobnicate {id}")
                }
            }
        })
        .collect();
    let input = lines.join("\n") + "\n";

    let mut outputs = Vec::new();
    for threads in ["1", "8"] {
        let metrics = dir.join(format!("metrics-t{threads}.json"));
        let out = run_stdin(
            &[
                "query",
                "--snapshot",
                artifact.to_str().unwrap(),
                "--stdin",
                "--threads",
                threads,
                "--metrics",
                metrics.to_str().unwrap(),
            ],
            &input,
        );
        assert!(
            out.status.success(),
            "query --stdin --threads {threads} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        outputs.push((out.stdout, read(&metrics)));
    }

    // Byte-identical stdout at any thread count.
    assert_eq!(
        outputs[0].0, outputs[1].0,
        "batch answers differ between 1 and 8 threads"
    );
    let stdout = String::from_utf8(outputs[0].0.clone()).expect("utf8 answers");
    assert_eq!(stdout.lines().count(), total, "one answer per request");
    let error_lines = stdout.lines().filter(|l| l.starts_with("error: ")).count();
    assert_eq!(error_lines as u64, errors, "error lines in place");

    // Counters land on exactly the predicted values, at both thread
    // counts — the tallies are merged in worker order, never racing.
    for (dump, threads) in [(&outputs[0].1, "1"), (&outputs[1].1, "8")] {
        for (name, expect) in [
            ("query.requests", total as u64),
            ("query.pattern", pattern),
            ("query.decompose", decompose),
            ("query.topk", topk),
            ("query.screen", screen),
            ("query.errors", errors),
        ] {
            assert_eq!(
                counter_value(dump, name),
                expect,
                "counter `{name}` at --threads {threads}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn doctor_warns_on_intact_artifacts_and_fails_on_corruption() {
    let dir = temp("doctor");
    let artifact = dir.join("study.artifact");
    write_snapshot(&artifact, &towerlens_artifact::format::sample_snapshot())
        .expect("write artifact");

    // Intact: one healthy artifact, exit 0.
    let out = Command::new(BIN)
        .args(["doctor", "--dir", dir.to_str().unwrap()])
        .output()
        .expect("spawn doctor");
    assert!(out.status.success(), "doctor failed on an intact artifact");
    let text = String::from_utf8(out.stdout).expect("utf8 doctor output");
    assert!(
        text.contains("1 artifact(s): 1 ok, 0 degraded, 0 damaged"),
        "unexpected doctor summary:\n{text}"
    );

    // One flipped payload byte: checksum mismatch, BAD row, exit 1.
    let mut bytes = std::fs::read(&artifact).expect("read artifact bytes");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&artifact, &bytes).expect("write corrupted artifact");
    let out = Command::new(BIN)
        .args(["doctor", "--dir", dir.to_str().unwrap()])
        .output()
        .expect("spawn doctor");
    assert_eq!(
        out.status.code(),
        Some(1),
        "doctor must exit 1 on a corrupt artifact"
    );
    let text = String::from_utf8(out.stdout).expect("utf8 doctor output");
    assert!(text.contains("BAD"), "no BAD row in:\n{text}");
    assert!(
        text.contains("1 artifact(s): 0 ok, 0 degraded, 1 damaged"),
        "unexpected doctor summary:\n{text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
