//! Panic containment, end to end: a stage that panics mid-study is
//! converted into a per-stage failure — the process survives, the
//! run report names the casualty, and the CLI exits non-zero with the
//! status table.
//!
//! The failpoint is the `TOWERLENS_FAULT_PANIC` environment variable,
//! which is process-global — so this integration-test binary holds
//! exactly one test and nothing else may share the process.

use towerlens_cli::{run_study, study_config};
use towerlens_core::StageStatus;

#[test]
fn injected_panic_degrades_the_study_instead_of_aborting() {
    std::env::set_var("TOWERLENS_FAULT_PANIC", "label");

    // Library surface: the panic is contained to the `label` stage.
    let config = study_config("tiny", 42).expect("scale");
    let (report, run_report) = run_study(config, None).expect("study survives the panic");
    assert!(run_report.degraded());
    assert_eq!(run_report.with_status(StageStatus::Failed), vec!["label"]);
    let error = run_report
        .stage("label")
        .expect("label stage reported")
        .error
        .as_deref()
        .expect("failure rendered");
    assert!(
        error.contains("panicked") && error.contains("TOWERLENS_FAULT_PANIC"),
        "unexpected error: {error}"
    );
    // The spine's numbers still came out; only the enrichment is gone.
    assert!(report.geo.is_none());
    assert!(!report.is_complete());
    assert!(report.patterns.k >= 2);

    // CLI surface: same run through the binary's entry point — exit
    // code 1 (degraded), not a process abort.
    let argv: Vec<String> = ["study", "--scale", "tiny", "--seed", "42"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert_eq!(towerlens_cli::app::run(&argv), 1);

    std::env::remove_var("TOWERLENS_FAULT_PANIC");
}
