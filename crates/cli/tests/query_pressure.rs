//! Overload-control tests for the query server: admission budgets,
//! virtual-cost deadlines, and seeded fault injection through the real
//! binary.
//!
//! The contract under test is determinism under pressure: shedding is
//! decided per request from the virtual-cost model alone, so a batch
//! run at `--threads 1` and `--threads 8` must produce byte-identical
//! stdout and exactly equal `query.*` counters — including the shed
//! and deadline tallies. Faults injected via `TOWERLENS_FAULT_QUERY`
//! must ride through transparently inside the retry budget and fail
//! with a typed error line past it.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};

use towerlens_artifact::{write_snapshot, DECOMPOSE_SOLVE_UNITS};
use towerlens_cli::commands::{run_study, study_config};
use towerlens_core::Study;
use towerlens_pipeline::feature::FeatureSpace;

const BIN: &str = env!("CARGO_BIN_EXE_towerlens-cli");

fn temp(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("towerlens-pressure-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// A counter's value in a `--metrics` dump; 0 when never registered.
fn counter_value(metrics: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\":");
    match metrics.find(&needle) {
        None => 0,
        Some(at) => metrics[at + needle.len()..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .unwrap_or_else(|_| panic!("unparseable value for `{name}`")),
    }
}

fn run_stdin_env(args: &[&str], input: &str, env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(BIN);
    cmd.args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    for (k, v) in env {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().expect("spawn CLI");
    // A child that rejects its config exits before draining stdin;
    // the resulting EPIPE is part of the contract, not a failure.
    if let Err(e) = child
        .stdin
        .take()
        .expect("stdin handle")
        .write_all(input.as_bytes())
    {
        assert_eq!(e.kind(), std::io::ErrorKind::BrokenPipe, "write stdin: {e}");
    }
    child.wait_with_output().expect("wait CLI")
}

/// Builds the tiny-study artifact in-process and returns its path,
/// its tower ids, and the ids with a stored decomposition row.
fn tiny_artifact(dir: &Path) -> (PathBuf, Vec<u64>, std::collections::HashSet<u64>) {
    let config = study_config("tiny", 42).expect("tiny config");
    let fingerprint = Study::new(config.clone()).checkpoint_fingerprint();
    let (report, _) = run_study(config, None).expect("tiny study");
    let snapshot = report
        .to_snapshot(fingerprint, FeatureSpace::Auto)
        .expect("snapshot from tiny study");
    let ids = snapshot.tower_ids.clone();
    let stored: std::collections::HashSet<u64> = snapshot
        .decompositions
        .iter()
        .map(|d| ids[d.vector_index])
        .collect();
    let path = dir.join("study.artifact");
    write_snapshot(&path, &snapshot).expect("write artifact");
    (path, ids, stored)
}

/// `fnv1a64` has exactly one definition; the `core` spelling is a
/// re-export of the canonical `artifact` helper, and both hash to the
/// published FNV-1a offset basis on empty input.
#[test]
fn fnv1a64_is_one_definition_across_crates() {
    let core: fn(&[u8]) -> u64 = towerlens_core::engine::fnv1a64;
    let artifact: fn(&[u8]) -> u64 = towerlens_artifact::fnv1a64;
    assert_eq!(core(b""), 0xcbf2_9ce4_8422_2325, "FNV-1a offset basis");
    let long: Vec<u8> = (0..4096u32).map(|i| (i * 31 % 251) as u8).collect();
    for input in [&b""[..], b"towerlens", b"\x00\xff\x00", &long] {
        assert_eq!(core(input), artifact(input), "input {} bytes", input.len());
    }
}

#[test]
fn zero_budget_and_zero_deadline_are_usage_errors() {
    let dir = temp("zero-flags");
    // The flags are rejected before the snapshot is ever opened, so a
    // nonexistent path is fine here.
    let artifact = dir.join("missing.artifact");
    for flag in ["--request-budget", "--deadline-units"] {
        let out = Command::new(BIN)
            .args([
                "query",
                "--snapshot",
                artifact.to_str().unwrap(),
                flag,
                "0",
                "pattern",
                "0",
            ])
            .output()
            .expect("spawn CLI");
        assert_eq!(out.status.code(), Some(2), "{flag} 0 must be a usage error");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(&format!("{flag} must be at least 1 cost unit")),
            "{flag}: {stderr}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn budget_equal_to_cost_admits_and_one_below_sheds() {
    let dir = temp("edge");
    let (artifact, ids, _) = tiny_artifact(&dir);
    let n = ids.len() as u64;
    assert!(n > 1, "tiny study must have at least two towers");
    let request = format!("topk {} 3\n", ids[0]);
    let snapshot = artifact.to_str().unwrap();

    // topk scans every tower: cost = n. A budget of exactly n admits.
    let equal = n.to_string();
    let out = run_stdin_env(
        &[
            "query",
            "--snapshot",
            snapshot,
            "--stdin",
            "--request-budget",
            &equal,
        ],
        &request,
        &[],
    );
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    assert!(
        stdout.starts_with(&format!("topk {}", ids[0])),
        "budget == cost must admit: {stdout}"
    );

    // One unit below sheds with a typed line naming both numbers.
    let below = (n - 1).to_string();
    let out = run_stdin_env(
        &[
            "query",
            "--snapshot",
            snapshot,
            "--stdin",
            "--request-budget",
            &below,
        ],
        &request,
        &[],
    );
    assert!(out.status.success(), "batch mode reports shed in place");
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    assert_eq!(
        stdout,
        format!(
            "error: overloaded: request cost {n} exceeds budget {}\n",
            n - 1
        )
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shedding_is_byte_identical_across_threads_with_exact_counters() {
    let dir = temp("shed-soak");
    let (artifact, ids, stored) = tiny_artifact(&dir);
    let snapshot = artifact.to_str().unwrap();
    let n = ids.len() as u64;
    assert!(n > DECOMPOSE_SOLVE_UNITS, "topk must out-cost a live solve");

    // 400 mixed requests under a budget of 1: pattern and stored
    // decompositions (cost 1) are admitted, topk (cost n) and live
    // solves (cost 16) are shed. The split is predicted up front.
    let total = 400usize;
    let (mut pattern, mut decompose, mut shed) = (0u64, 0u64, 0u64);
    let lines: Vec<String> = (0..total)
        .map(|i| {
            let id = ids[i % ids.len()];
            match i % 4 {
                0 | 1 => {
                    pattern += 1;
                    format!("pattern {id}")
                }
                2 => {
                    shed += 1;
                    format!("topk {id} 5")
                }
                _ => {
                    if stored.contains(&id) {
                        decompose += 1;
                    } else {
                        shed += 1;
                    }
                    format!("decompose {id}")
                }
            }
        })
        .collect();
    assert!(shed > 100, "mix must shed a real share of the batch");
    assert!(decompose > 0, "mix must admit some stored decompositions");
    let input = lines.join("\n") + "\n";

    let mut outputs = Vec::new();
    for threads in ["1", "8"] {
        let metrics = dir.join(format!("metrics-t{threads}.json"));
        let out = run_stdin_env(
            &[
                "query",
                "--snapshot",
                snapshot,
                "--stdin",
                "--request-budget",
                "1",
                "--threads",
                threads,
                "--metrics",
                metrics.to_str().unwrap(),
            ],
            &input,
            &[],
        );
        assert!(
            out.status.success(),
            "--threads {threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        outputs.push((out.stdout, read(&metrics)));
    }

    assert_eq!(
        outputs[0].0, outputs[1].0,
        "shed decisions differ between 1 and 8 threads"
    );
    let stdout = String::from_utf8(outputs[0].0.clone()).expect("utf8 answers");
    assert_eq!(stdout.lines().count(), total, "one answer per request");

    // Shed responses sit exactly where their requests were: answers
    // stay 1:1 with input lines, in input order.
    for (i, (line, request)) in stdout.lines().zip(&lines).enumerate() {
        if request.starts_with("topk")
            || (request.starts_with("decompose")
                && !stored.contains(&request[10..].parse::<u64>().unwrap()))
        {
            assert!(
                line.starts_with("error: overloaded: "),
                "line {i} should be shed: {line}"
            );
        } else {
            assert!(
                !line.starts_with("error: "),
                "line {i} should be admitted: {line}"
            );
        }
    }

    for (dump, threads) in [(&outputs[0].1, "1"), (&outputs[1].1, "8")] {
        for (name, expect) in [
            ("query.requests", total as u64),
            ("query.pattern", pattern),
            ("query.decompose", decompose),
            ("query.topk", 0),
            ("query.errors", 0),
            ("query.shed_total", shed),
            ("query.deadline_exceeded_total", 0),
        ] {
            assert_eq!(
                counter_value(dump, name),
                expect,
                "counter `{name}` at --threads {threads}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadline_is_a_deterministic_virtual_clock() {
    let dir = temp("deadline");
    let (artifact, ids, _) = tiny_artifact(&dir);
    let snapshot = artifact.to_str().unwrap();
    let n = ids.len() as u64;

    // No admission budget; a deadline of 1 virtual unit lets pattern
    // lookups through and times out every topk scan.
    let total = 120usize;
    let lines: Vec<String> = (0..total)
        .map(|i| {
            let id = ids[i % ids.len()];
            if i % 3 == 2 {
                format!("topk {id} 4")
            } else {
                format!("pattern {id}")
            }
        })
        .collect();
    let input = lines.join("\n") + "\n";
    let metrics = dir.join("metrics.json");
    let out = run_stdin_env(
        &[
            "query",
            "--snapshot",
            snapshot,
            "--stdin",
            "--deadline-units",
            "1",
            "--metrics",
            metrics.to_str().unwrap(),
        ],
        &input,
        &[],
    );
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    let expect_line = format!("error: deadline: request consumed {n} units, deadline is 1");
    for (i, line) in stdout.lines().enumerate() {
        if i % 3 == 2 {
            assert_eq!(line, expect_line, "line {i}");
        } else {
            assert!(line.starts_with("pattern "), "line {i}: {line}");
        }
    }
    let dump = read(&metrics);
    assert_eq!(counter_value(&dump, "query.deadline_exceeded_total"), 40);
    assert_eq!(counter_value(&dump, "query.shed_total"), 0);
    assert_eq!(counter_value(&dump, "query.topk"), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_faults_ride_through_on_retry_and_surface_past_budget() {
    let dir = temp("faults");
    let (artifact, ids, _) = tiny_artifact(&dir);
    let snapshot = artifact.to_str().unwrap();
    let lines: Vec<String> = (0..64)
        .map(|i| format!("pattern {}", ids[i % ids.len()]))
        .collect();
    let input = lines.join("\n") + "\n";

    let clean = run_stdin_env(&["query", "--snapshot", snapshot, "--stdin"], &input, &[]);
    assert!(clean.status.success());

    // Two transient failures per worker chunk, two retries: invisible
    // in stdout, visible in the retry counter.
    let metrics = dir.join("ride.json");
    let out = run_stdin_env(
        &[
            "query",
            "--snapshot",
            snapshot,
            "--stdin",
            "--retries",
            "2",
            "--metrics",
            metrics.to_str().unwrap(),
        ],
        &input,
        &[("TOWERLENS_FAULT_QUERY", "transient:2")],
    );
    assert!(out.status.success());
    assert_eq!(
        clean.stdout, out.stdout,
        "ride-through must not change a single answer byte"
    );
    assert!(
        counter_value(&read(&metrics), "query.fault_retries_total") >= 2,
        "retries must be accounted"
    );

    // Zero retries: the same fault surfaces as a typed error line and
    // the rest of the batch keeps answering.
    let out = run_stdin_env(
        &["query", "--snapshot", snapshot, "--stdin"],
        &input,
        &[("TOWERLENS_FAULT_QUERY", "transient:1")],
    );
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    assert!(
        stdout.contains("error: transient query fault injected (no retries left)"),
        "fault must surface typed: {stdout}"
    );
    assert!(stdout.lines().any(|l| l.starts_with("pattern ")));

    // A malformed spec is a startup config error naming the variable.
    let out = run_stdin_env(
        &["query", "--snapshot", snapshot, "--stdin"],
        &input,
        &[("TOWERLENS_FAULT_QUERY", "nonsense")],
    );
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("TOWERLENS_FAULT_QUERY"));
    let _ = std::fs::remove_dir_all(&dir);
}
