//! End-to-end observability contract, driven through the real binary.
//!
//! Subprocesses, not library calls: the metrics registry is
//! process-global, so each invocation here gets the same fresh-process
//! view a user gets, and parallel tests cannot contaminate each other.
//!
//! Covered: `--metrics` dumps are byte-identical across identical
//! seeded runs (the determinism contract — no wall-clock in the
//! snapshot), hot-path counters land on exactly the same values for
//! any `--threads` setting (the sharded-tally contract), and a
//! checkpoint-resumed `analyze` reports the reloaded stages as
//! `cached` in the `--trace-events` span log while every recompute
//! counter stays at zero.

use std::path::{Path, PathBuf};
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_towerlens-cli");

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("towerlens-obs-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn run_ok(args: &[&str]) {
    let out = Command::new(BIN).args(args).output().expect("spawn CLI");
    assert!(
        out.status.success(),
        "`towerlens-cli {}` failed:\n{}",
        args.join(" "),
        String::from_utf8_lossy(&out.stderr)
    );
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The `status` of the span named `name` in a `--trace-events` dump.
fn span_status(log: &str, name: &str) -> String {
    let needle = format!("\"name\":\"{name}\"");
    let at = log
        .find(&needle)
        .unwrap_or_else(|| panic!("no span `{name}` in {log}"));
    let rest = &log[at..];
    let status = rest
        .find("\"status\":\"")
        .map(|i| &rest[i + 10..])
        .and_then(|s| s.split('"').next())
        .unwrap_or_else(|| panic!("span `{name}` has no status in {log}"));
    status.to_string()
}

/// A counter's value in a `--metrics` dump; 0 when never registered.
fn counter_value(metrics: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\":");
    match metrics.find(&needle) {
        None => 0,
        Some(at) => metrics[at + needle.len()..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .unwrap_or_else(|_| panic!("unparseable value for `{name}`")),
    }
}

#[test]
fn metrics_dump_is_byte_identical_across_identical_seeded_runs() {
    let dir = temp("determinism");
    let first = dir.join("m1.json");
    let second = dir.join("m2.json");
    for path in [&first, &second] {
        run_ok(&[
            "study",
            "--scale",
            "tiny",
            "--seed",
            "42",
            "--metrics",
            path.to_str().unwrap(),
        ]);
    }
    let a = std::fs::read(&first).expect("first dump");
    let b = std::fs::read(&second).expect("second dump");
    assert!(!a.is_empty());
    assert_eq!(a, b, "identical seeded runs must dump identical metrics");

    // And the dump actually carries the hot-path counters, not an
    // empty-but-identical shell.
    let text = String::from_utf8(a).expect("utf8 metrics");
    for name in [
        "cluster.agglomerative.merges",
        "cluster.distance.evaluations",
        "core.engine.runs",
        "core.engine.stages_ran",
        "dsp.goertzel.evaluations",
        "pipeline.normalize.towers_kept",
    ] {
        assert!(counter_value(&text, name) > 0, "counter `{name}` is zero");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hot_path_counters_are_exactly_equal_across_thread_counts() {
    let dir = temp("thread-counters");
    let dumps: Vec<String> = ["1", "2", "8"]
        .iter()
        .map(|threads| {
            let path = dir.join(format!("metrics-t{threads}.json"));
            run_ok(&[
                "study",
                "--scale",
                "tiny",
                "--seed",
                "42",
                "--threads",
                threads,
                "--metrics",
                path.to_str().unwrap(),
            ]);
            read(&path)
        })
        .collect();

    // Tallies are accumulated in per-worker shards and merged in worker
    // order, so every counter — not just the stage outputs — must land
    // on exactly the same value no matter how the work was split.
    for name in [
        "cluster.distance.evaluations",
        "cluster.agglomerative.merges",
        "dsp.goertzel.evaluations",
        "dsp.fft.transforms",
        "pipeline.normalize.towers_kept",
    ] {
        let reference = counter_value(&dumps[0], name);
        for (dump, threads) in dumps.iter().zip(["1", "2", "8"]) {
            assert_eq!(
                counter_value(dump, name),
                reference,
                "counter `{name}` differs at --threads {threads}"
            );
        }
    }
    // Stronger still: the whole dump is byte-identical.
    assert_eq!(dumps[0], dumps[1], "metrics differ between 1 and 2 threads");
    assert_eq!(dumps[0], dumps[2], "metrics differ between 1 and 8 threads");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resumed_stages_are_cached_in_the_span_log_with_zero_recompute_counters() {
    let dir = temp("resume");
    let data = dir.join("data");
    let checkpoints = dir.join("ckpt");
    run_ok(&[
        "gen",
        "--out",
        data.to_str().unwrap(),
        "--seed",
        "11",
        "--towers",
        "40",
        "--agents",
        "300",
        "--days",
        "7",
    ]);

    // Warm run: populates the checkpoint store and — being a fresh
    // process — shows every stage as `ran` with live counters.
    let warm_metrics = dir.join("warm-metrics.json");
    let warm_events = dir.join("warm-events.json");
    let analyze = |metrics: &Path, events: &Path| {
        run_ok(&[
            "analyze",
            "--dir",
            data.to_str().unwrap(),
            "--resume",
            checkpoints.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
            "--trace-events",
            events.to_str().unwrap(),
        ]);
    };
    analyze(&warm_metrics, &warm_events);
    let warm_log = read(&warm_events);
    for stage in ["ingest-logs", "clean", "vectorize", "cluster"] {
        assert_eq!(span_status(&warm_log, stage), "ran");
    }
    let warm = read(&warm_metrics);
    assert!(counter_value(&warm, "trace.ingest.records") > 0);
    assert!(counter_value(&warm, "cluster.distance.evaluations") > 0);

    // Resumed run: checkpointed stages come back `cached`, their
    // upstreams are skipped, and no recompute counter moves.
    let resumed_metrics = dir.join("resumed-metrics.json");
    let resumed_events = dir.join("resumed-events.json");
    analyze(&resumed_metrics, &resumed_events);
    let log = read(&resumed_events);
    for stage in ["vectorize", "cluster"] {
        assert_eq!(span_status(&log, stage), "cached", "stage `{stage}`");
    }
    for stage in ["ingest-logs", "clean"] {
        assert_eq!(span_status(&log, stage), "skipped", "stage `{stage}`");
    }

    let metrics = read(&resumed_metrics);
    for name in [
        "trace.ingest.records",
        "trace.quarantine.records",
        "trace.clean.kept",
        "trace.clean.dropped",
        "pipeline.vectorize.records",
        "pipeline.normalize.towers_kept",
        "cluster.distance.evaluations",
        "cluster.agglomerative.merges",
    ] {
        assert_eq!(counter_value(&metrics, name), 0, "counter `{name}` moved");
    }
    // The engine itself still ran and accounted for the reloads.
    assert_eq!(counter_value(&metrics, "core.engine.runs"), 1);
    assert_eq!(counter_value(&metrics, "core.engine.stages_cached"), 2);
    assert_eq!(counter_value(&metrics, "core.engine.stages_skipped"), 2);
    let _ = std::fs::remove_dir_all(&dir);
}
