//! Chaos tests for the snapshot publish path: `serve --publish` killed
//! at every point inside a generation publish, and `query --watch`
//! refusing to serve bytes from a generation that fails fsck.
//!
//! The kill matrix sweeps all three abort points of the publish
//! protocol (after the temp write, after the generation rename, after
//! the `CURRENT.tmp` write) with an escalating ordinal: attempt `k`
//! lets `k - 1` publishes complete and aborts the `k`-th, so every
//! rerun makes progress and every publish point gets hit. The
//! converged store must end with `CURRENT` naming a generation whose
//! bytes — and whose query answers — are identical to an uninterrupted
//! run.

use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_towerlens-cli");

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("towerlens-chaos-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn run_env(args: &[&str], env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(BIN);
    cmd.args(args);
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn CLI")
}

fn run_ok(args: &[&str]) -> Output {
    let out = run_env(args, &[]);
    assert!(
        out.status.success(),
        "`towerlens-cli {}` failed:\n{}",
        args.join(" "),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Generates a small dataset and returns the path of its log file.
fn gen_logs(dir: &Path, lines: usize) -> PathBuf {
    let ds = dir.join("ds");
    run_ok(&[
        "gen",
        "--out",
        ds.to_str().unwrap(),
        "--seed",
        "11",
        "--towers",
        "24",
        "--agents",
        "90",
        "--days",
        "7",
    ]);
    let full = read(&ds.join("logs.tsv"));
    let trimmed: String = full.lines().take(lines).map(|l| format!("{l}\n")).collect();
    let path = dir.join("logs.tsv");
    std::fs::write(&path, trimmed).unwrap();
    path
}

fn serve_args<'a>(source: &'a str, data: &'a str, publish: &'a str) -> Vec<&'a str> {
    vec![
        "serve",
        "--source",
        source,
        "--data",
        data,
        "--days",
        "7",
        "--segment-records",
        "600",
        "--shards",
        "3",
        "--publish",
        publish,
    ]
}

/// The bytes of the generation `CURRENT` names.
fn current_bytes(store: &Path) -> Vec<u8> {
    let name = read(&store.join("CURRENT"));
    std::fs::read(store.join(name.trim()))
        .unwrap_or_else(|e| panic!("read CURRENT target in {}: {e}", store.display()))
}

/// Runs `query --watch --stdin` over the store and returns stdout.
fn watch_answers(store: &Path, input: &str) -> String {
    use std::io::Write;
    let mut child = Command::new(BIN)
        .args([
            "query",
            "--snapshot",
            store.to_str().unwrap(),
            "--watch",
            "--stdin",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn CLI");
    child
        .stdin
        .take()
        .expect("stdin handle")
        .write_all(input.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait CLI");
    assert!(
        out.status.success(),
        "query --watch over {} failed:\n{}",
        store.display(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

/// A deterministic probe hitting every tower of the generated
/// dataset; towers the vectorizer dropped answer with a typed error
/// line, which is part of the deterministic surface being compared.
fn probe() -> String {
    let mut lines = Vec::new();
    for id in 0..24 {
        lines.push(format!("pattern {id}"));
        lines.push(format!("topk {id} 5"));
    }
    lines.join("\n") + "\n"
}

/// The tentpole drill: kill `serve` inside the publish at all three
/// protocol points, restarting with an escalating ordinal until a run
/// drains cleanly. The converged store's `CURRENT` generation must be
/// byte-identical to the uninterrupted run's, and `query --watch`
/// must serve identical answers with clean health.
#[test]
fn kill_at_every_publish_point_converges_byte_identically() {
    let dir = temp("kill-matrix");
    let logs = gen_logs(&dir, 3000);
    let source = logs.to_str().unwrap();

    let clean_data = dir.join("clean-data");
    let clean_store = dir.join("clean-store");
    run_ok(&serve_args(
        source,
        clean_data.to_str().unwrap(),
        clean_store.to_str().unwrap(),
    ));
    let clean_current = current_bytes(&clean_store);
    let input = probe();
    let clean_answers = watch_answers(&clean_store, &input);
    assert!(
        clean_answers.lines().any(|l| l.starts_with("pattern ")),
        "clean store must answer pattern probes:\n{clean_answers}"
    );

    for stage in ["tmp", "gen", "cur"] {
        let data = dir.join(format!("{stage}-data"));
        let store = dir.join(format!("{stage}-store"));
        let args = serve_args(source, data.to_str().unwrap(), store.to_str().unwrap());
        let mut aborted = 0usize;
        let mut converged = false;
        for nth in 1..=12 {
            let spec = format!("{stage}:{nth}");
            let out = run_env(&args, &[("TOWERLENS_FAULT_PUBLISH", &spec)]);
            if out.status.success() {
                converged = true;
                break;
            }
            let stderr = String::from_utf8_lossy(&out.stderr);
            assert!(
                stderr.contains("seeded kill"),
                "{spec}: run died for the wrong reason:\n{stderr}"
            );
            aborted += 1;
        }
        assert!(converged, "{stage}: chaos loop never drained");
        assert!(
            aborted >= 1,
            "{stage}: the kill matrix never actually aborted a publish"
        );

        // Convergence is byte-level: the pointed-to generation holds
        // exactly the clean run's bytes (generation numbers may differ
        // — aborted publishes leave unreferenced generations behind).
        assert_eq!(
            current_bytes(&store),
            clean_current,
            "{stage}: converged CURRENT generation differs from the clean run"
        );

        // And answer-level: the watcher serves the same bytes, with
        // clean (non-degraded) health.
        assert_eq!(
            watch_answers(&store, &input),
            clean_answers,
            "{stage}: converged store answers differ from the clean run"
        );
        let health = watch_answers(&store, "health\n");
        assert!(
            health.contains("degraded=no"),
            "{stage}: converged store reports degraded health: {health}"
        );

        // The store passes its own fsck: every generation decodes and
        // the pointer row is healthy.
        let doctor = run_ok(&["doctor", "--dir", store.to_str().unwrap()]);
        let text = String::from_utf8_lossy(&doctor.stdout);
        assert!(
            text.contains("0 degraded, 0 corrupt"),
            "{stage}: doctor on converged store:\n{text}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Byte corruption of the generation `CURRENT` names: the watcher
/// never serves it, falls back to the last good generation with
/// degraded health, rejects explicit reloads, and `doctor` flags the
/// store with exit 1.
#[test]
fn corrupt_current_generation_falls_back_and_is_flagged() {
    let dir = temp("corrupt");
    let logs = gen_logs(&dir, 3000);
    let data = dir.join("data");
    let store = dir.join("store");
    run_ok(&serve_args(
        logs.to_str().unwrap(),
        data.to_str().unwrap(),
        store.to_str().unwrap(),
    ));

    let current = read(&store.join("CURRENT"));
    let target = store.join(current.trim());
    let generations: Vec<String> = std::fs::read_dir(&store)
        .unwrap()
        .filter_map(|e| e.unwrap().file_name().into_string().ok())
        .filter(|n| n.starts_with("gen-") && n.ends_with(".artifact"))
        .collect();
    assert!(
        generations.len() >= 2,
        "need a fallback generation, store has {generations:?}"
    );

    // Health before the corruption: serving the pointer, not degraded.
    let healthy = watch_answers(&store, "health\n");
    assert!(healthy.contains("degraded=no"), "{healthy}");

    // Flip one byte near the end of the pointed-to generation.
    let mut bytes = std::fs::read(&target).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&target, bytes).unwrap();

    // The watcher opens on the last good generation, keeps answering,
    // reports degraded health, and rejects a reload onto the corrupt
    // pointer target.
    let out = watch_answers(&store, "health\npattern 0\nreload\nhealth\n");
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 4, "one answer per line:\n{out}");
    assert!(
        lines[0].starts_with("health ") && lines[0].contains("degraded=yes"),
        "opening on a corrupt pointer must be degraded: {}",
        lines[0]
    );
    assert!(
        lines[1].starts_with("pattern 0 ") || lines[1].starts_with("error: "),
        "last-good generation must keep answering: {}",
        lines[1]
    );
    assert!(
        lines[2].starts_with("reload rejected: ") && lines[2].contains(current.trim()),
        "reload must be rejected, naming the bad generation: {}",
        lines[2]
    );
    assert!(
        lines[3].contains("degraded=yes") && lines[3].contains("rejected=1"),
        "health must count the rejection: {}",
        lines[3]
    );

    // The degraded watcher never serves the corrupt generation's
    // bytes: its answers match the previous generation served
    // directly as a plain snapshot.
    let fallback: Vec<String> = {
        let mut gens = generations.clone();
        gens.sort();
        gens
    };
    let last_good = fallback[fallback.len() - 2].clone();
    let direct = run_env(
        &[
            "query",
            "--snapshot",
            store.join(&last_good).to_str().unwrap(),
            "pattern",
            "0",
        ],
        &[],
    );
    let direct_answer = String::from_utf8_lossy(if direct.status.success() {
        &direct.stdout
    } else {
        &direct.stderr
    })
    .trim()
    .to_string();
    let watched = watch_answers(&store, "pattern 0\n");
    if direct.status.success() {
        assert_eq!(
            watched.trim(),
            direct_answer,
            "fallback serves gen {last_good}"
        );
    }

    // doctor: the corrupt generation is a BAD row, the pointer row is
    // degraded (last-good keeps serving), and the exit code is 1.
    let doctor = run_env(&["doctor", "--dir", store.to_str().unwrap()], &[]);
    assert_eq!(doctor.status.code(), Some(1), "doctor must fail the store");
    let text = String::from_utf8_lossy(&doctor.stdout);
    assert!(text.contains("BAD"), "doctor:\n{text}");
    assert!(
        text.contains("fails fsck"),
        "doctor must explain the pointer degradation:\n{text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A malformed publish kill spec is a startup config error naming the
/// variable, before any ingestion starts.
#[test]
fn malformed_publish_fault_spec_is_a_config_error() {
    let dir = temp("badspec");
    let logs = gen_logs(&dir, 600);
    let data = dir.join("data");
    let store = dir.join("store");
    let args = serve_args(
        logs.to_str().unwrap(),
        data.to_str().unwrap(),
        store.to_str().unwrap(),
    );
    let out = run_env(&args, &[("TOWERLENS_FAULT_PUBLISH", "fsync:everything")]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("TOWERLENS_FAULT_PUBLISH"));
    let _ = std::fs::remove_dir_all(&dir);
}
