//! End-to-end tests of `towerlens-cli serve`: the crash-safe streaming
//! daemon through the real binary.
//!
//! The headline contract under test is deterministic kill-and-resume
//! replay: a daemon killed at *every* WAL segment boundary and
//! restarted each time must converge to stdout byte-identical to an
//! uninterrupted run — zero record loss, zero drift. Subprocesses, not
//! library calls: the kill failpoint aborts the whole process, and the
//! metrics registry is process-global.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_towerlens-cli");

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("towerlens-serve-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn run_env(args: &[&str], env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(BIN);
    cmd.args(args);
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn CLI")
}

fn run_ok(args: &[&str]) -> Output {
    let out = run_env(args, &[]);
    assert!(
        out.status.success(),
        "`towerlens-cli {}` failed:\n{}",
        args.join(" "),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// A counter's value in a `--metrics` dump; 0 when never registered.
fn counter_value(metrics: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\":");
    match metrics.find(&needle) {
        None => 0,
        Some(at) => metrics[at + needle.len()..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .unwrap_or(0),
    }
}

/// Generates a small dataset and returns the path of its log file.
fn gen_logs(dir: &Path, lines: usize) -> PathBuf {
    let ds = dir.join("ds");
    run_ok(&[
        "gen",
        "--out",
        ds.to_str().unwrap(),
        "--seed",
        "11",
        "--towers",
        "24",
        "--agents",
        "90",
        "--days",
        "7",
    ]);
    let full = read(&ds.join("logs.tsv"));
    let trimmed: String = full.lines().take(lines).map(|l| format!("{l}\n")).collect();
    let path = dir.join("logs.tsv");
    std::fs::write(&path, trimmed).unwrap();
    path
}

fn serve_args<'a>(source: &'a str, data: &'a str) -> Vec<&'a str> {
    vec![
        "serve",
        "--source",
        source,
        "--data",
        data,
        "--days",
        "7",
        "--segment-records",
        "600",
        "--shards",
        "3",
    ]
}

/// Scrubs the scheduling-sensitive counter from a metrics dump: how
/// often a bounded queue happened to be full is a thread-timing fact,
/// not part of the deterministic surface.
fn scrub_metrics(metrics: &str) -> String {
    metrics
        .split(',')
        .filter(|field| !field.contains("serve.backpressure_waits"))
        .collect::<Vec<_>>()
        .join(",")
}

#[test]
fn serve_stdout_is_deterministic_and_metrics_stable() {
    let dir = temp("determinism");
    let logs = gen_logs(&dir, 3000);
    let (d1, d2) = (dir.join("data1"), dir.join("data2"));
    let (m1, m2) = (dir.join("m1.json"), dir.join("m2.json"));

    let mut args1 = serve_args(logs.to_str().unwrap(), d1.to_str().unwrap());
    args1.extend(["--metrics", m1.to_str().unwrap()]);
    let out1 = run_ok(&args1);
    let mut args2 = serve_args(logs.to_str().unwrap(), d2.to_str().unwrap());
    args2.extend(["--metrics", m2.to_str().unwrap()]);
    let out2 = run_ok(&args2);

    assert_eq!(
        out1.stdout, out2.stdout,
        "serve stdout must be deterministic"
    );
    let report = String::from_utf8_lossy(&out1.stdout);
    assert!(report.contains("source lines   3000"), "report: {report}");

    let (m1, m2) = (read(&m1), read(&m2));
    assert_eq!(scrub_metrics(&m1), scrub_metrics(&m2));
    assert_eq!(counter_value(&m1, "serve.records_ingested"), 3000);
    assert_eq!(counter_value(&m1, "serve.wal_segments"), 5);
    assert_eq!(counter_value(&m1, "serve.shed_total"), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The tentpole chaos drill: kill the daemon at every segment
/// boundary (both before and after the snapshot), restarting each
/// time, until a run reaches the drain. The survivors' stdout must be
/// byte-identical to an uninterrupted run over the same source.
#[test]
fn kill_at_every_segment_boundary_replays_byte_identically() {
    let dir = temp("chaos");
    let logs = gen_logs(&dir, 3000);
    let source = logs.to_str().unwrap();

    let clean_data = dir.join("clean");
    let clean = run_ok(&serve_args(source, clean_data.to_str().unwrap()));

    for (mode, spec) in [("pre", "pre:1"), ("post", "1")] {
        let data = dir.join(format!("chaos-{mode}"));
        let args = serve_args(source, data.to_str().unwrap());
        let mut final_stdout = Vec::new();
        let mut aborted = 0usize;
        for _run in 0..40 {
            let out = run_env(&args, &[("TOWERLENS_SERVE_KILL", spec)]);
            if out.status.success() {
                final_stdout = out.stdout;
                break;
            }
            aborted += 1;
        }
        assert!(
            !final_stdout.is_empty(),
            "{mode}: chaos loop never reached the drain"
        );
        // 3000 records / 600 per segment: the killed runs each seal
        // exactly one segment before dying, so the loop must abort
        // several times before converging.
        assert!(
            aborted >= 4,
            "{mode}: expected several aborted runs, got {aborted}"
        );
        assert_eq!(
            clean.stdout, final_stdout,
            "{mode}: kill-and-resume must converge to the uninterrupted stdout"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A transient shard failure burst inside the retry budget is
/// invisible in stdout; past the budget the shard quarantines and the
/// daemon survives with the loss accounted in metrics.
#[test]
fn shard_faults_ride_through_or_quarantine() {
    let dir = temp("shard-faults");
    let logs = gen_logs(&dir, 2000);
    let source = logs.to_str().unwrap();

    let clean_data = dir.join("clean");
    let clean = run_ok(&serve_args(source, clean_data.to_str().unwrap()));

    // Within budget: 2 injected failures per shard, 3 retries.
    let data = dir.join("ride");
    let metrics = dir.join("ride.json");
    let mut args = serve_args(source, data.to_str().unwrap());
    args.extend(["--retries", "3", "--metrics", metrics.to_str().unwrap()]);
    let out = run_env(&args, &[("TOWERLENS_FAULT_SHARD", "*:2")]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        clean.stdout, out.stdout,
        "ride-through must not change stdout"
    );
    let m = read(&metrics);
    assert!(counter_value(&m, "serve.shard_restarts") >= 6);
    assert_eq!(counter_value(&m, "serve.shed_total"), 0);
    assert_eq!(counter_value(&m, "serve.shards_quarantined"), 0);

    // Past budget: zero retries, the poisoned shard sheds and trips
    // its breaker; the daemon still drains successfully.
    let data = dir.join("quarantine");
    let metrics = dir.join("quarantine.json");
    let mut args = serve_args(source, data.to_str().unwrap());
    args.extend(["--retries", "0", "--metrics", metrics.to_str().unwrap()]);
    let out = run_env(&args, &[("TOWERLENS_FAULT_SHARD", "0:9")]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let m = read(&metrics);
    assert!(counter_value(&m, "serve.shed_total") > 0);
    assert_eq!(counter_value(&m, "serve.shards_quarantined"), 1);

    // A malformed failpoint spec is a typed config error, exit 1.
    let data = dir.join("badspec");
    let args = serve_args(source, data.to_str().unwrap());
    let out = run_env(&args, &[("TOWERLENS_FAULT_SHARD", "nonsense")]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("TOWERLENS_FAULT_SHARD"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn doctor_fscks_wal_and_snapshots_and_flags_corruption() {
    let dir = temp("doctor");
    let logs = gen_logs(&dir, 1500);
    let data = dir.join("data");
    run_ok(&serve_args(logs.to_str().unwrap(), data.to_str().unwrap()));

    let healthy = run_ok(&["doctor", "--dir", data.to_str().unwrap()]);
    let text = String::from_utf8_lossy(&healthy.stdout);
    assert!(text.contains("snap/serve-state.ckpt"), "doctor: {text}");
    assert!(text.contains("seg-00000000.wal"), "doctor: {text}");
    assert!(text.contains("0 damaged"), "doctor: {text}");

    // Flip one byte in the middle of a sealed segment: doctor must
    // report the segment BAD and exit 1.
    let seg = data.join("wal").join("seg-00000001.wal");
    let mut bytes = std::fs::read(&seg).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] = bytes[mid].wrapping_add(1);
    std::fs::write(&seg, bytes).unwrap();
    let damaged = run_env(&["doctor", "--dir", data.to_str().unwrap()], &[]);
    assert_eq!(damaged.status.code(), Some(1));
    let text = String::from_utf8_lossy(&damaged.stdout);
    assert!(text.contains("BAD"), "doctor after corruption: {text}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `serve --basis` classifies live towers against the frozen analyze
/// checkpoint, and the classification is part of the deterministic
/// report.
#[test]
fn serve_classifies_against_a_frozen_batch_basis() {
    let dir = temp("basis");
    let ds = dir.join("ds");
    run_ok(&[
        "gen",
        "--out",
        ds.to_str().unwrap(),
        "--seed",
        "11",
        "--towers",
        "24",
        "--agents",
        "90",
        "--days",
        "7",
    ]);
    // Batch study over the same dataset writes the frozen basis.
    let ckpt = dir.join("ckpt");
    run_ok(&[
        "analyze",
        "--dir",
        ds.to_str().unwrap(),
        "--days",
        "7",
        "--feature-space",
        "raw",
        "--resume",
        ckpt.to_str().unwrap(),
    ]);
    let basis = ckpt.join("cluster.ckpt");
    assert!(basis.exists(), "analyze should leave cluster.ckpt behind");

    let logs = ds.join("logs.tsv");
    let data = dir.join("data");
    let mut args = serve_args(logs.to_str().unwrap(), data.to_str().unwrap());
    args.extend(["--basis", basis.to_str().unwrap()]);
    let out = run_ok(&args);
    let report = String::from_utf8_lossy(&out.stdout);
    let basis_line = report
        .lines()
        .find(|l| l.starts_with("basis"))
        .unwrap_or_else(|| panic!("no basis line in report: {report}"));
    assert!(
        basis_line.contains("stage=cluster"),
        "basis line: {basis_line}"
    );
    assert!(basis_line.contains("classes"), "basis line: {basis_line}");
    let _ = std::fs::remove_dir_all(&dir);
}
