//! Crash-recovery chaos harness, driven through the real binary.
//!
//! Three failure regimes the paper's month-long Hadoop runs (§2) make
//! routine, each injected via a seeded failpoint and asserted against
//! the recovery contract:
//!
//! * **Process death mid-run** (`TOWERLENS_FAULT_KILL=k`): the process
//!   aborts right after the k-th checkpoint save. A `--resume` rerun
//!   must produce byte-identical final artifacts and stdout, reload
//!   exactly k stages from disk, and leave every recompute counter of
//!   the cached stages at zero — proving only unfinished work was
//!   redone.
//! * **Transient checkpoint I/O faults** (`TOWERLENS_FAULT_IO`): a
//!   bounded burst of injected save failures rides through under a
//!   `--retries` budget with bit-identical output and a nonzero
//!   retry counter; over budget, the run fails with a typed
//!   checkpoint error instead of corrupting anything.
//! * **Stragglers** (`TOWERLENS_FAULT_SLEEP`): an optional stage that
//!   blows its `--stage-timeout-ms` budget is declared lost by the
//!   watchdog and degrades the run (exit 1) instead of hanging it.
//!
//! Subprocesses, not library calls: the kill failpoint aborts the
//! whole process, and the metrics registry is process-global.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_towerlens-cli");

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("towerlens-chaos-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Runs the CLI with extra environment variables, returning the raw
/// output (the caller judges the exit status).
fn run_env(args: &[&str], env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(BIN);
    cmd.args(args);
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn CLI")
}

fn run_ok(args: &[&str]) -> Output {
    let out = run_env(args, &[]);
    assert!(
        out.status.success(),
        "`towerlens-cli {}` failed:\n{}",
        args.join(" "),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Checkpoint file names in a store directory, sorted.
fn ckpt_files(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read dir {}: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            (path.extension().and_then(|e| e.to_str()) == Some("ckpt"))
                .then(|| path.file_name().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    names.sort();
    names
}

/// A counter's value in a `--metrics` dump; 0 when never registered.
fn counter_value(metrics: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\":");
    match metrics.find(&needle) {
        None => 0,
        Some(at) => metrics[at + needle.len()..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .unwrap_or_else(|_| panic!("unparseable value for `{name}`")),
    }
}

/// The `status` of the span named `name` in a `--trace-events` dump.
fn span_status(log: &str, name: &str) -> String {
    let needle = format!("\"name\":\"{name}\"");
    let at = log
        .find(&needle)
        .unwrap_or_else(|| panic!("no span `{name}` in {log}"));
    let rest = &log[at..];
    rest.find("\"status\":\"")
        .map(|i| &rest[i + 10..])
        .and_then(|s| s.split('"').next())
        .unwrap_or_else(|| panic!("span `{name}` has no status in {log}"))
        .to_string()
}

fn study_args<'a>(ckpt: &'a str, metrics: &'a str, extra: &[&'a str]) -> Vec<&'a str> {
    let mut args = vec![
        "study",
        "--scale",
        "tiny",
        "--seed",
        "42",
        "--resume",
        ckpt,
        "--metrics",
        metrics,
    ];
    args.extend_from_slice(extra);
    args
}

/// Kill the process after each possible checkpoint save (the study's
/// checkpointed spine is city → synthesize → vectorize → cluster, one
/// save per wave), then resume: the final artifacts and stdout must
/// be byte-identical to an uninterrupted run, with exactly k stages
/// reloaded and zero recompute in the cached prefix.
#[test]
fn crash_after_every_kill_point_resumes_bit_identically() {
    let dir = temp("kill");
    let base_ckpt = dir.join("base-ckpt");
    let base_metrics = dir.join("base-metrics.json");
    let baseline = run_ok(&study_args(
        base_ckpt.to_str().unwrap(),
        base_metrics.to_str().unwrap(),
        &[],
    ));
    let baseline_files = ckpt_files(&base_ckpt);
    assert_eq!(
        baseline_files.len(),
        4,
        "expected the 4 checkpointed spine stages, got {baseline_files:?}"
    );

    for k in 1..=4usize {
        let ckpt = dir.join(format!("kill-{k}-ckpt"));
        let metrics = dir.join(format!("kill-{k}-metrics.json"));
        let ckpt_s = ckpt.to_str().unwrap().to_string();
        let metrics_s = metrics.to_str().unwrap().to_string();

        // The doomed run: aborts right after the k-th save completes.
        let killed = run_env(
            &study_args(&ckpt_s, &metrics_s, &[]),
            &[("TOWERLENS_FAULT_KILL", &k.to_string())],
        );
        assert!(
            !killed.status.success(),
            "kill-point {k}: the process should have died"
        );
        let survivors = ckpt_files(&ckpt);
        assert_eq!(
            survivors.len(),
            k,
            "kill-point {k}: expected exactly k durable checkpoints, got {survivors:?}"
        );

        // The recovery run: no failpoint, same store.
        let resumed = run_env(&study_args(&ckpt_s, &metrics_s, &[]), &[]);
        assert!(
            resumed.status.success(),
            "kill-point {k}: resume failed:\n{}",
            String::from_utf8_lossy(&resumed.stderr)
        );
        assert_eq!(
            resumed.stdout, baseline.stdout,
            "kill-point {k}: resumed stdout differs from the uninterrupted run"
        );
        assert_eq!(ckpt_files(&ckpt), baseline_files, "kill-point {k}");
        for name in &baseline_files {
            let a = std::fs::read(base_ckpt.join(name)).expect("baseline ckpt");
            let b = std::fs::read(ckpt.join(name)).expect("resumed ckpt");
            assert_eq!(a, b, "kill-point {k}: checkpoint `{name}` differs");
        }

        // Exactly the crash's durable prefix was reloaded, and the
        // cached stages' recompute counters never moved.
        let m = read(&metrics);
        assert_eq!(
            counter_value(&m, "core.engine.stages_cached"),
            k as u64,
            "kill-point {k}"
        );
        assert_eq!(counter_value(&m, "core.engine.stage_retries_total"), 0);
        if k >= 3 {
            // vectorize was cached: nothing was normalized this run.
            assert_eq!(
                counter_value(&m, "pipeline.normalize.towers_kept"),
                0,
                "kill-point {k}: vectorize recomputed"
            );
        }
        if k >= 4 {
            // cluster was cached: no distance work this run.
            assert_eq!(
                counter_value(&m, "cluster.agglomerative.merges"),
                0,
                "kill-point {k}: cluster recomputed"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A bounded burst of injected checkpoint-save faults rides through
/// under the retry budget — bit-identical stdout, nonzero retry
/// counter — and fails with a typed checkpoint error over budget.
#[test]
fn transient_io_faults_ride_through_under_the_retry_budget() {
    let dir = temp("io");
    let clean_ckpt = dir.join("clean-ckpt");
    let clean_metrics = dir.join("clean-metrics.json");
    let clean = run_ok(&study_args(
        clean_ckpt.to_str().unwrap(),
        clean_metrics.to_str().unwrap(),
        &[],
    ));

    // Two injected save failures on `vectorize`, three retries: the
    // run recovers and the numbers are exactly the fault-free ones.
    let ok_ckpt = dir.join("ok-ckpt");
    let ok_metrics = dir.join("ok-metrics.json");
    let survived = run_env(
        &study_args(
            ok_ckpt.to_str().unwrap(),
            ok_metrics.to_str().unwrap(),
            &["--retries", "3"],
        ),
        &[("TOWERLENS_FAULT_IO", "save:vectorize:2")],
    );
    assert!(
        survived.status.success(),
        "retry budget should absorb the burst:\n{}",
        String::from_utf8_lossy(&survived.stderr)
    );
    assert_eq!(
        survived.stdout, clean.stdout,
        "riding through faults changed the output"
    );
    let m = read(&ok_metrics);
    assert!(
        counter_value(&m, "core.engine.stage_retries_total") >= 2,
        "retries not accounted: {m}"
    );
    // The checkpoint that finally landed is byte-identical to the
    // fault-free one.
    for name in ckpt_files(&clean_ckpt) {
        let a = std::fs::read(clean_ckpt.join(&name)).expect("clean ckpt");
        let b = std::fs::read(ok_ckpt.join(&name)).expect("survivor ckpt");
        assert_eq!(a, b, "checkpoint `{name}` differs after riding out faults");
    }

    // The same burst with an insufficient budget is a typed failure,
    // not a silent degradation.
    let bad_ckpt = dir.join("bad-ckpt");
    let bad_metrics = dir.join("bad-metrics.json");
    let failed = run_env(
        &study_args(
            bad_ckpt.to_str().unwrap(),
            bad_metrics.to_str().unwrap(),
            &["--retries", "1"],
        ),
        &[("TOWERLENS_FAULT_IO", "save:vectorize:2")],
    );
    assert!(!failed.status.success(), "over-budget faults must fail");
    let stderr = String::from_utf8_lossy(&failed.stderr);
    assert!(
        stderr.contains("checkpoint") && stderr.contains("injected transient I/O fault"),
        "missing typed checkpoint error, got: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// An optional stage that overruns its `--stage-timeout-ms` budget is
/// declared lost by the watchdog: the run degrades (exit 1) with the
/// timeout accounted in the span log and the metrics registry.
#[test]
fn watchdog_deadline_degrades_an_overrunning_optional_stage() {
    let dir = temp("deadline");
    let metrics = dir.join("metrics.json");
    let events = dir.join("events.json");
    let out = run_env(
        &[
            "study",
            "--scale",
            "tiny",
            "--seed",
            "42",
            "--stage-timeout-ms",
            "2000",
            "--metrics",
            metrics.to_str().unwrap(),
            "--trace-events",
            events.to_str().unwrap(),
        ],
        &[("TOWERLENS_FAULT_SLEEP", "label:6000")],
    );
    assert_eq!(
        out.status.code(),
        Some(1),
        "a lost optional stage must degrade the run, got: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("degraded"), "not announced: {stderr}");

    let log = read(&events);
    assert_eq!(span_status(&log, "label"), "failed");
    let table = String::from_utf8_lossy(&out.stdout);
    assert!(
        table.contains("2000 ms budget"),
        "timeout not rendered in the status table: {table}"
    );
    let m = read(&metrics);
    assert_eq!(counter_value(&m, "core.engine.stage_timeouts_total"), 1);
    // The spine was unaffected: the study still produced its numbers.
    assert_eq!(counter_value(&m, "core.engine.stages_failed"), 1);
    let _ = std::fs::remove_dir_all(&dir);
}
