//! Seeded end-to-end fault injection: every failure class the paper's
//! month-long operator feed exhibits (§2) is injected into a generated
//! dataset and driven through the full analysis, asserting the
//! pipeline's contract — fail *open* with accurate quarantine and
//! imputation accounting while the damage is isolated, fail *closed*
//! the moment the feed itself is untrustworthy, and never let a
//! damaged checkpoint change a number.
//!
//! All faults come from [`FaultInjector`] with pinned seeds, so these
//! tests are bit-stable across runs and machines.

use std::path::{Path, PathBuf};

use towerlens_cli::commands::{
    analyze_instrumented, doctor_checkpoints, generate_dataset, run_study, study_config,
    AnalyzeOptions, GenOptions,
};
use towerlens_core::{RunReport, StageStatus};
use towerlens_trace::faults::FaultInjector;
use towerlens_trace::record::{parse_lines, to_lines, LogRecord};

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("towerlens-fi-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A fixed small dataset: 7 days, 60 towers, 400 agents, seed 11.
fn gen(dir: &Path) -> usize {
    generate_dataset(
        dir,
        &GenOptions {
            seed: 11,
            towers: 60,
            agents: 400,
            days: 7,
        },
    )
    .expect("gen")
}

fn options(max_bad_fraction: f64, impute: bool) -> AnalyzeOptions {
    AnalyzeOptions {
        days: 7,
        threads: 2,
        max_bad_fraction,
        impute,
        ..AnalyzeOptions::default()
    }
}

fn read_records(dir: &Path) -> Vec<LogRecord> {
    let text = std::fs::read_to_string(dir.join("logs.tsv")).expect("read logs");
    let (records, bad) = parse_lines(&text);
    assert!(bad.is_empty(), "generated logs must be clean");
    records
}

fn card(report: &RunReport, stage: &str, label: &str) -> u64 {
    report
        .stage(stage)
        .unwrap_or_else(|| panic!("stage {stage} missing"))
        .cards
        .iter()
        .find(|c| c.label == label)
        .unwrap_or_else(|| panic!("card {label} missing on {stage}"))
        .value
}

#[test]
fn garbage_under_threshold_is_quarantined_with_accurate_counts() {
    let dir = temp("under");
    gen(&dir);
    let mut records = read_records(&dir);
    let mut inj = FaultInjector::new(21);
    // Two independent damage classes: backwards clocks (parse as
    // negative duration) and partially flushed lines (bad field count
    // or bad number).
    let skewed = inj.skew_clocks(&mut records, 0.02);
    assert!(skewed > 0);
    let (text, cut) = inj.truncate_lines(&to_lines(&records), 0.02);
    assert!(cut > 0);
    std::fs::write(dir.join("logs.tsv"), &text).expect("write faulty logs");
    let total_lines = text.lines().filter(|l| !l.is_empty()).count();

    let (summary, report) =
        analyze_instrumented(&dir, &options(0.10, false), None).expect("analyze survives garbage");

    // The quarantine ledger balances: every line is either a parsed
    // record or a categorised quarantined one, and at least every
    // skewed record is in the latter bucket.
    let quarantined = card(&report, "ingest-logs", "quarantined");
    assert_eq!(summary.records as u64 + quarantined, total_lines as u64);
    assert!(quarantined >= skewed as u64, "{quarantined} < {skewed}");
    assert!(summary.k >= 2, "k = {}", summary.k);
    assert!(!report.degraded());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_over_threshold_fails_closed() {
    let dir = temp("over");
    gen(&dir);
    let mut records = read_records(&dir);
    // Half the feed with backwards clocks: no threshold this side of
    // 50% should accept it.
    let skewed = FaultInjector::new(22).skew_clocks(&mut records, 0.5);
    assert!(skewed > records.len() / 3);
    std::fs::write(dir.join("logs.tsv"), to_lines(&records)).expect("write faulty logs");

    let Err(err) = analyze_instrumented(&dir, &options(0.05, false), None) else {
        panic!("a feed this broken must fail closed");
    };
    let rendered = err.to_string();
    assert!(
        rendered.contains("quarantined") && rendered.contains("threshold"),
        "unexpected error: {rendered}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tower_blackout_is_imputed_when_asked() {
    let dir = temp("blackout");
    gen(&dir);
    let mut records = read_records(&dir);
    // The busiest tower goes dark for all of window day 2 — a
    // whole-day outage, far over the one-hour detection floor.
    let day = 86_400u64;
    let window_start = towerlens_trace::time::TraceWindow::days(7).start_s;
    let (dark_from, dark_to) = (window_start + 2 * day, window_start + 3 * day);
    let mut traffic = std::collections::HashMap::new();
    for r in &records {
        if r.start_s < dark_to && r.end_s >= dark_from {
            *traffic.entry(r.cell_id).or_insert(0usize) += 1;
        }
    }
    let (&busiest, _) = traffic.iter().max_by_key(|(_, n)| **n).expect("traffic");
    let removed = FaultInjector::new(23).blackout(&mut records, busiest, dark_from, dark_to);
    assert!(removed > 0, "busiest tower had no day-2 traffic");
    std::fs::write(dir.join("logs.tsv"), to_lines(&records)).expect("write faulty logs");

    // Without imputation the run completes (robustness), with it the
    // outage is detected and repaired from the daily periodicity.
    let (plain, plain_report) =
        analyze_instrumented(&dir, &options(0.05, false), None).expect("blackout without impute");
    assert_eq!(card(&plain_report, "vectorize", "imputed"), 0);
    let (imputed, report) =
        analyze_instrumented(&dir, &options(0.05, true), None).expect("blackout with impute");
    assert!(card(&report, "vectorize", "imputed") > 0);
    assert!(imputed.k >= 2 && plain.k >= 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drops_duplicates_and_spikes_do_not_break_the_analysis() {
    let dir = temp("dropdup");
    gen(&dir);
    let mut records = read_records(&dir);
    let mut inj = FaultInjector::new(24);
    let dropped = inj.drop_records(&mut records, 0.10);
    let added = inj.duplicate_records(&mut records, 0.10);
    let spiked = inj.spike_bytes(&mut records, 0.01, 1_000);
    assert!(dropped > 0 && added > 0 && spiked > 0);
    std::fs::write(dir.join("logs.tsv"), to_lines(&records)).expect("write faulty logs");

    let (summary, report) =
        analyze_instrumented(&dir, &options(0.05, false), None).expect("perturbed feed");
    assert_eq!(summary.records, records.len());
    assert!(summary.k >= 2, "k = {}", summary.k);
    assert!(!report.degraded());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checkpoint_recomputes_bit_identically() {
    let ckpt = temp("ckpt");
    let config = study_config("tiny", 33).expect("scale");

    // Fresh run: the ground truth every later run must reproduce.
    let (fresh, _) = run_study(config.clone(), None).expect("fresh study");
    let fresh_fp = fresh.into_full().expect("complete").fingerprint();

    // Populate the checkpoint directory, then damage one file the way
    // a crashed writer would: a partial flush.
    let (first, _) = run_study(config.clone(), Some(&ckpt)).expect("first checkpointed study");
    assert_eq!(first.into_full().expect("complete").fingerprint(), fresh_fp);
    let mut files: Vec<PathBuf> = std::fs::read_dir(&ckpt)
        .expect("ckpt dir")
        .filter_map(|e| {
            let p = e.ok()?.path();
            (p.extension().and_then(|x| x.to_str()) == Some("ckpt")).then_some(p)
        })
        .collect();
    files.sort();
    let victim = files.first().expect("at least one checkpoint");
    FaultInjector::new(25)
        .truncate_file(victim, 0.5)
        .expect("truncate checkpoint");

    // The doctor sees the damage…
    let rows = doctor_checkpoints(&ckpt, None).expect("doctor");
    assert!(!rows.is_empty());
    assert!(
        rows.iter().any(|(_, verdict)| verdict.is_err()),
        "doctor missed the truncated checkpoint"
    );

    // …and the engine recovers from it: warn, recompute, and land on
    // exactly the same numbers.
    let (resumed, report) = run_study(config, Some(&ckpt)).expect("resumed study");
    assert!(
        !report.warnings.is_empty(),
        "recompute fallback must be announced"
    );
    assert!(report
        .warnings
        .iter()
        .any(|w| w.contains("unusable") && w.contains("recomputing")));
    assert!(!report.with_status(StageStatus::Ran).is_empty());
    assert_eq!(
        resumed.into_full().expect("complete").fingerprint(),
        fresh_fp
    );

    // The rewritten checkpoint is healthy again.
    let rows = doctor_checkpoints(&ckpt, None).expect("doctor after heal");
    assert!(rows.iter().all(|(_, verdict)| verdict.is_ok()));
    let _ = std::fs::remove_dir_all(&ckpt);
}
