//! Thread-count determinism contract, driven through the real binary.
//!
//! The parallel compute layer writes every result into a pre-sized
//! slot keyed by item index, so the artifacts a run produces must be
//! byte-for-byte independent of `--threads`. This golden test pins
//! that contract at the outermost observable boundary: the human
//! stdout, the `--json` report, and every checkpoint file on disk
//! must be identical between `--threads 1` and `--threads 8`.
//!
//! Subprocesses, not library calls: the metrics registry is
//! process-global and each invocation must see a fresh process.

use std::path::{Path, PathBuf};
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_towerlens-cli");

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("towerlens-thr-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn run_ok(args: &[&str]) -> Vec<u8> {
    let out = Command::new(BIN).args(args).output().expect("spawn CLI");
    assert!(
        out.status.success(),
        "`towerlens-cli {}` failed:\n{}",
        args.join(" "),
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

/// Blanks the wall-clock fields (`total_ms`, `wall_ms`) of a `--json`
/// report: those are nondeterministic between any two runs, threads or
/// not. Everything else — stage names, waves, statuses, attempt
/// counts, cardinality cards, warnings — must match exactly.
fn scrub_timings(report: &[u8]) -> String {
    let mut out = String::from_utf8(report.to_vec()).expect("utf8 report");
    for key in ["\"total_ms\":", "\"wall_ms\":"] {
        let mut from = 0;
        while let Some(at) = out[from..].find(key) {
            let start = from + at + key.len();
            let end = start
                + out[start..]
                    .find(|c: char| !(c.is_ascii_digit() || c == '.'))
                    .expect("number terminator");
            out.replace_range(start..end, "?");
            from = start;
        }
    }
    out
}

/// Checkpoint file names in a store directory, sorted.
fn ckpt_files(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read dir {}: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            (path.extension().and_then(|e| e.to_str()) == Some("ckpt"))
                .then(|| path.file_name().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    names.sort();
    names
}

#[test]
fn analyze_artifacts_are_byte_identical_across_thread_counts() {
    let dir = temp("analyze");
    let data = dir.join("data");
    run_ok(&[
        "gen",
        "--out",
        data.to_str().unwrap(),
        "--seed",
        "11",
        "--towers",
        "40",
        "--agents",
        "300",
        "--days",
        "7",
    ]);

    struct Run {
        stdout: Vec<u8>,
        json: Vec<u8>,
        ckpt: PathBuf,
    }
    let runs: Vec<Run> = ["1", "8"]
        .iter()
        .map(|threads| {
            let ckpt = dir.join(format!("ckpt-t{threads}"));
            let stdout = run_ok(&[
                "analyze",
                "--dir",
                data.to_str().unwrap(),
                "--threads",
                threads,
                "--resume",
                ckpt.to_str().unwrap(),
            ]);
            // A fresh process for the JSON report, so the second run
            // exercises the checkpoint reload path as well.
            let json = run_ok(&[
                "analyze",
                "--dir",
                data.to_str().unwrap(),
                "--threads",
                threads,
                "--resume",
                ckpt.to_str().unwrap(),
                "--json",
            ]);
            Run { stdout, json, ckpt }
        })
        .collect();

    assert_eq!(
        String::from_utf8_lossy(&runs[0].stdout),
        String::from_utf8_lossy(&runs[1].stdout),
        "human stdout differs between --threads 1 and --threads 8"
    );
    assert_eq!(
        scrub_timings(&runs[0].json),
        scrub_timings(&runs[1].json),
        "--json report differs between --threads 1 and --threads 8"
    );

    let names = ckpt_files(&runs[0].ckpt);
    assert!(!names.is_empty(), "expected checkpoint files");
    assert_eq!(
        names,
        ckpt_files(&runs[1].ckpt),
        "checkpoint inventories differ"
    );
    for name in &names {
        let a = std::fs::read(runs[0].ckpt.join(name)).expect("read t1 checkpoint");
        let b = std::fs::read(runs[1].ckpt.join(name)).expect("read t8 checkpoint");
        assert_eq!(a, b, "checkpoint `{name}` differs across thread counts");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spectral_study_artifacts_are_byte_identical_across_thread_counts() {
    // The matrix-free path: `--feature-space spectral` projects every
    // tower onto its six principal components (parallel, sharded
    // Goertzel tallies) before clustering through the on-demand
    // metric. Both the projection and the serial clustering must be
    // exactly thread-invariant — stdout and every checkpoint byte.
    let dir = temp("spectral-study");
    struct Run {
        stdout: Vec<u8>,
        ckpt: PathBuf,
    }
    let runs: Vec<Run> = ["1", "2", "8"]
        .iter()
        .map(|threads| {
            let ckpt = dir.join(format!("ckpt-t{threads}"));
            let stdout = run_ok(&[
                "study",
                "--scale",
                "tiny",
                "--seed",
                "42",
                "--feature-space",
                "spectral",
                "--threads",
                threads,
                "--resume",
                ckpt.to_str().unwrap(),
            ]);
            Run { stdout, ckpt }
        })
        .collect();
    for other in &runs[1..] {
        assert_eq!(
            String::from_utf8_lossy(&runs[0].stdout),
            String::from_utf8_lossy(&other.stdout),
            "spectral study stdout differs across thread counts"
        );
    }
    let names = ckpt_files(&runs[0].ckpt);
    assert!(!names.is_empty(), "expected checkpoint files");
    for other in &runs[1..] {
        assert_eq!(names, ckpt_files(&other.ckpt), "checkpoint inventories");
        for name in &names {
            let a = std::fs::read(runs[0].ckpt.join(name)).expect("read t1 checkpoint");
            let b = std::fs::read(other.ckpt.join(name)).expect("read checkpoint");
            assert_eq!(a, b, "checkpoint `{name}` differs across thread counts");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spectral_index_toggle_is_byte_invisible() {
    // The exact-pruning spatial index behind the spectral cluster
    // stage is a pure accelerator: with `TOWERLENS_CLUSTER_INDEX=off`
    // the stage falls back to the unindexed on-demand metric, and
    // stdout plus every checkpoint byte must be identical to the
    // indexed run — at every thread count, in every combination.
    let dir = temp("index-toggle");
    struct Run {
        tag: String,
        stdout: Vec<u8>,
        ckpt: PathBuf,
    }
    let mut runs: Vec<Run> = Vec::new();
    for index in ["on", "off"] {
        for threads in ["1", "2", "8"] {
            let tag = format!("index-{index}-t{threads}");
            let ckpt = dir.join(format!("ckpt-{tag}"));
            let mut cmd = Command::new(BIN);
            cmd.args([
                "study",
                "--scale",
                "tiny",
                "--seed",
                "42",
                "--feature-space",
                "spectral",
                "--threads",
                threads,
                "--resume",
                ckpt.to_str().unwrap(),
            ]);
            if index == "off" {
                cmd.env("TOWERLENS_CLUSTER_INDEX", "off");
            }
            let out = cmd.output().expect("spawn CLI");
            assert!(
                out.status.success(),
                "study ({tag}) failed:\n{}",
                String::from_utf8_lossy(&out.stderr)
            );
            runs.push(Run {
                tag,
                stdout: out.stdout,
                ckpt,
            });
        }
    }
    let names = ckpt_files(&runs[0].ckpt);
    assert!(!names.is_empty(), "expected checkpoint files");
    for other in &runs[1..] {
        assert_eq!(
            String::from_utf8_lossy(&runs[0].stdout),
            String::from_utf8_lossy(&other.stdout),
            "stdout differs between {} and {}",
            runs[0].tag,
            other.tag
        );
        assert_eq!(
            names,
            ckpt_files(&other.ckpt),
            "checkpoint inventories differ between {} and {}",
            runs[0].tag,
            other.tag
        );
        for name in &names {
            let a = std::fs::read(runs[0].ckpt.join(name)).expect("read reference checkpoint");
            let b = std::fs::read(other.ckpt.join(name)).expect("read checkpoint");
            assert_eq!(
                a, b,
                "checkpoint `{name}` differs between {} and {}",
                runs[0].tag, other.tag
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn study_stdout_is_byte_identical_across_thread_counts() {
    let outputs: Vec<Vec<u8>> = ["1", "2", "8"]
        .iter()
        .map(|threads| {
            run_ok(&[
                "study",
                "--scale",
                "tiny",
                "--seed",
                "42",
                "--threads",
                threads,
            ])
        })
        .collect();
    assert_eq!(
        String::from_utf8_lossy(&outputs[0]),
        String::from_utf8_lossy(&outputs[1]),
        "study stdout differs between 1 and 2 threads"
    );
    assert_eq!(
        String::from_utf8_lossy(&outputs[0]),
        String::from_utf8_lossy(&outputs[2]),
        "study stdout differs between 1 and 8 threads"
    );
}
