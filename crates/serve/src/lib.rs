//! # towerlens-serve
//!
//! Crash-safe streaming ingestion for the towerlens pipeline: the
//! `towerlens serve` daemon tails a source of connection-log lines,
//! acknowledges each by appending it to a checksummed segment-based
//! write-ahead log, maintains per-tower sliding traffic state (binned
//! traffic, incremental z-score moments, sliding-window Goertzel
//! amplitudes of the three principal spectral lines) across supervised
//! shard workers, snapshots the durable state at every segment
//! boundary, and — at end of stream — runs the batch analysis over the
//! recovered state.
//!
//! The headline guarantee is **deterministic kill-and-resume replay**:
//! kill the daemon at any point, restart it over the same source and
//! data directory, repeat as often as you like — the final stdout
//! report is byte-identical to an uninterrupted run, and byte-identical
//! to [`batch_reference`] over the whole source. See
//! [`daemon`] for the contract's mechanics and [`wal`] for the ledger
//! format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod basis;
pub mod daemon;
pub mod error;
pub mod state;
pub mod wal;

pub use basis::{classify, load_basis, Basis};
pub use daemon::{batch_reference, serve, ServeConfig, ServeReport, SNAP_DIR};
pub use error::ServeError;
pub use state::{ServeSnapshot, Session, SnapshotCodec, TowerState, SNAPSHOT_STAGE};
pub use wal::{fsck_wal, replay, ReplayOutcome, WalEntry, WalSegmentFsck, WalWriter, WAL_DIR};
