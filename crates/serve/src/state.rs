//! Durable daemon state and its snapshot codec, plus the live
//! per-tower view.
//!
//! The determinism contract of the daemon rests on one rule: **every
//! byte the daemon prints to stdout is a pure function of the durable
//! state**, and the durable state is a pure function of the
//! acknowledged record stream. Durable state is deliberately minimal —
//! per-tower *sessions* (the cleaned connection logs, each carrying
//! the sequence number under which its key was first seen) plus a
//! handful of integer counters. Everything floating-point (binned
//! traffic, Goertzel lines, z-score moments) is a live *view* rebuilt
//! exactly from the sessions, never persisted, and never printed to
//! stdout — so a kill-and-resume run cannot diverge by a single bit
//! from an uninterrupted one.
//!
//! Session semantics mirror [`towerlens_trace::clean::clean_records`]
//! exactly: byte-identical duplicates are dropped, conflicting entries
//! (same `(user, cell, start, end)`, different bytes) keep the larger
//! byte count *in place*. Sorting all sessions by `first_seq` at drain
//! therefore reconstructs the batch cleaner's output order, which is
//! what lets the drain call the real batch pipeline and match it by
//! construction.

use std::collections::HashMap;

use towerlens_core::engine::checkpoint::{decode_usize, BodyReader};
use towerlens_core::engine::StageCodec;
use towerlens_dsp::SlidingGoertzel;
use towerlens_trace::record::LogRecord;
use towerlens_trace::time::TraceWindow;

/// The snapshot's stage name inside the checkpoint store.
pub const SNAPSHOT_STAGE: &str = "serve-state";

/// One cleaned connection session of a tower.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Session {
    /// Anonymised subscriber id.
    pub user_id: u64,
    /// Session start (seconds since trace epoch).
    pub start_s: u64,
    /// Session end (seconds since trace epoch).
    pub end_s: u64,
    /// Bytes transferred (conflicts resolved to the maximum).
    pub bytes: u64,
    /// The global sequence number under which this session key was
    /// first acknowledged — the key's rank in the cleaner's
    /// first-seen output order.
    pub first_seq: u64,
}

/// The durable state: what a snapshot persists and a restart resumes
/// from. Towers are kept in ascending cell id; sessions per tower in
/// first-seen (insertion) order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeSnapshot {
    /// Next sequence number to assign (= source lines acknowledged).
    pub next_seq: u64,
    /// Well-formed records acknowledged.
    pub records: u64,
    /// Malformed source lines acknowledged.
    pub malformed: u64,
    /// Byte-identical duplicates dropped.
    pub duplicates: u64,
    /// Conflicting entries resolved (larger byte count kept).
    pub conflicts: u64,
    /// Sessions per tower, ascending cell id.
    pub towers: Vec<(u32, Vec<Session>)>,
}

impl ServeSnapshot {
    /// Total sessions across all towers.
    pub fn kept(&self) -> u64 {
        self.towers.iter().map(|(_, s)| s.len() as u64).sum()
    }
}

/// Line-oriented codec for [`ServeSnapshot`], in the checkpoint
/// store's body idiom. Everything is integer, so the round trip is
/// trivially exact.
pub struct SnapshotCodec;

impl StageCodec<ServeSnapshot> for SnapshotCodec {
    fn encode(&self, snap: &ServeSnapshot, out: &mut String) -> Result<(), String> {
        out.push_str(&format!(
            "counts {} {} {} {} {}\n",
            snap.next_seq, snap.records, snap.malformed, snap.duplicates, snap.conflicts
        ));
        out.push_str(&format!("towers {}\n", snap.towers.len()));
        for (cell, sessions) in &snap.towers {
            out.push_str(&format!("tower {cell} {}\n", sessions.len()));
            for s in sessions {
                out.push_str(&format!(
                    "s {} {} {} {} {}\n",
                    s.user_id, s.start_s, s.end_s, s.bytes, s.first_seq
                ));
            }
        }
        Ok(())
    }

    fn decode(&self, body: &mut BodyReader<'_>) -> Result<ServeSnapshot, String> {
        fn u64_field<'a>(
            fields: &mut impl Iterator<Item = &'a str>,
            what: &str,
        ) -> Result<u64, String> {
            fields
                .next()
                .ok_or_else(|| format!("missing {what}"))?
                .parse()
                .map_err(|_| format!("bad {what}"))
        }
        let mut fields = body.tagged("counts")?.split(' ');
        let next_seq = u64_field(&mut fields, "next_seq")?;
        let records = u64_field(&mut fields, "records")?;
        let malformed = u64_field(&mut fields, "malformed")?;
        let duplicates = u64_field(&mut fields, "duplicates")?;
        let conflicts = u64_field(&mut fields, "conflicts")?;
        let n_towers = decode_usize(body.tagged("towers")?)?;
        let mut towers = Vec::with_capacity(n_towers);
        for _ in 0..n_towers {
            let mut fields = body.tagged("tower")?.split(' ');
            let cell = u64_field(&mut fields, "cell id")? as u32;
            let n_sessions = u64_field(&mut fields, "session count")? as usize;
            let mut sessions = Vec::with_capacity(n_sessions);
            for _ in 0..n_sessions {
                let mut fields = body.tagged("s")?.split(' ');
                sessions.push(Session {
                    user_id: u64_field(&mut fields, "user id")?,
                    start_s: u64_field(&mut fields, "start")?,
                    end_s: u64_field(&mut fields, "end")?,
                    bytes: u64_field(&mut fields, "bytes")?,
                    first_seq: u64_field(&mut fields, "first_seq")?,
                });
            }
            towers.push((cell, sessions));
        }
        Ok(ServeSnapshot {
            next_seq,
            records,
            malformed,
            duplicates,
            conflicts,
            towers,
        })
    }
}

/// What applying one record to a tower did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// A new session key: stored and aggregated.
    New,
    /// A byte-identical duplicate: dropped.
    Duplicate,
    /// Same key, different bytes: the larger count kept in place.
    Conflict,
}

/// One tower's live state: the durable sessions plus the derived
/// views — binned traffic (the sliding-Goertzel bank's window),
/// incrementally maintained principal spectral lines, and the running
/// z-score moments. The views are amended in place on the hot path
/// and rebuilt *exactly* from the sessions whenever a conflict
/// rewrites history, so they are always a pure function of the
/// sessions.
#[derive(Debug, Clone)]
pub struct TowerState {
    sessions: Vec<Session>,
    index: HashMap<(u64, u64, u64), usize>,
    bank: SlidingGoertzel,
    sum: f64,
    sumsq: f64,
}

impl TowerState {
    /// An empty tower over `window`, maintaining the spectral lines
    /// `gbins` (every index already reduced modulo the window length).
    pub fn new(window: &TraceWindow, gbins: &[usize]) -> Self {
        let bank = SlidingGoertzel::new(vec![0.0; window.n_bins], gbins)
            .expect("serve config validated: non-empty window, bins in range");
        TowerState {
            sessions: Vec::new(),
            index: HashMap::new(),
            bank,
            sum: 0.0,
            sumsq: 0.0,
        }
    }

    /// Rebuilds a tower from snapshot sessions (exactly the conflict
    /// rebuild, so restart state matches in-run state).
    pub fn from_sessions(sessions: Vec<Session>, window: &TraceWindow, gbins: &[usize]) -> Self {
        let mut tower = TowerState::new(window, gbins);
        tower.index = sessions
            .iter()
            .enumerate()
            .map(|(i, s)| ((s.user_id, s.start_s, s.end_s), i))
            .collect();
        tower.sessions = sessions;
        tower.rebuild(window);
        tower
    }

    /// The tower's sessions, in first-seen order.
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// Consumes the tower, returning its sessions.
    pub fn into_sessions(self) -> Vec<Session> {
        self.sessions
    }

    /// The live binned traffic view (bytes per window bin).
    pub fn traffic(&self) -> &[f64] {
        self.bank.window()
    }

    /// Live amplitudes of the maintained principal spectral lines.
    pub fn line_amplitudes(&self) -> Vec<f64> {
        (0..self.bank.bins().len())
            .map(|i| self.bank.amplitude(i))
            .collect()
    }

    /// Live z-score moments of the binned traffic: `(mean, stddev)`
    /// (population standard deviation, matching the batch
    /// normaliser's convention).
    pub fn zscore_moments(&self) -> (f64, f64) {
        let n = self.bank.len() as f64;
        let mean = self.sum / n;
        let var = (self.sumsq / n - mean * mean).max(0.0);
        (mean, var.sqrt())
    }

    /// Applies one acknowledged record under the batch cleaner's
    /// semantics. `seq` is the record's global sequence number; it is
    /// recorded only for a new session key.
    pub fn apply(&mut self, r: &LogRecord, seq: u64, window: &TraceWindow) -> ApplyOutcome {
        let key = (r.user_id, r.start_s, r.end_s);
        match self.index.entry(key) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(self.sessions.len());
                self.sessions.push(Session {
                    user_id: r.user_id,
                    start_s: r.start_s,
                    end_s: r.end_s,
                    bytes: r.bytes,
                    first_seq: seq,
                });
                self.add_interval(r.start_s, r.end_s, r.bytes, window);
                ApplyOutcome::New
            }
            std::collections::hash_map::Entry::Occupied(o) => {
                let idx = *o.get();
                let existing = &mut self.sessions[idx];
                if existing.bytes == r.bytes {
                    ApplyOutcome::Duplicate
                } else {
                    if r.bytes > existing.bytes {
                        existing.bytes = r.bytes;
                        // History was rewritten: amendments alone
                        // cannot express a replacement exactly in
                        // floating point, so rebuild the whole view
                        // from the sessions — live state stays a pure
                        // function of the durable state.
                        self.rebuild(window);
                    }
                    ApplyOutcome::Conflict
                }
            }
        }
    }

    /// Adds one session interval to the live views: bins via the
    /// vectorizer's overlap rule, each touched bin amending the
    /// Goertzel bank in place and the z-score moments incrementally.
    fn add_interval(&mut self, start_s: u64, end_s: u64, bytes: u64, window: &TraceWindow) {
        let mut touched: Vec<(usize, f64)> = Vec::new();
        window.for_each_overlap(start_s, end_s, |bin, frac| {
            touched.push((bin, bytes as f64 * frac));
        });
        for (bin, delta) in touched {
            let old = self.bank.window()[bin];
            self.bank
                .update(bin, delta)
                .expect("overlap bins are within the window");
            let new = old + delta;
            self.sum += delta;
            self.sumsq += new * new - old * old;
        }
    }

    /// Recomputes every live view exactly from the sessions.
    fn rebuild(&mut self, window: &TraceWindow) {
        let gbins = self.bank.bins().to_vec();
        let mut raw = vec![0.0; window.n_bins];
        for s in &self.sessions {
            window.for_each_overlap(s.start_s, s.end_s, |bin, frac| {
                raw[bin] += s.bytes as f64 * frac;
            });
        }
        self.sum = raw.iter().sum();
        self.sumsq = raw.iter().map(|v| v * v).sum();
        self.bank = SlidingGoertzel::new(raw, &gbins)
            .expect("rebuild reuses the validated window and bins");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use towerlens_trace::clean::clean_records;

    fn window() -> TraceWindow {
        TraceWindow::days(1)
    }

    fn rec(user: u64, start: u64, bytes: u64) -> LogRecord {
        let w = window();
        LogRecord {
            user_id: user,
            start_s: w.start_s + start,
            end_s: w.start_s + start + 600,
            cell_id: 0,
            address: String::new(),
            bytes,
        }
    }

    #[test]
    fn apply_mirrors_the_batch_cleaner() {
        let w = window();
        let records = vec![
            rec(1, 0, 100),
            rec(1, 0, 100), // duplicate
            rec(1, 0, 250), // conflict, larger wins
            rec(2, 600, 50),
            rec(1, 0, 10), // conflict, smaller loses
        ];
        let mut tower = TowerState::new(&w, &[1, 7, 14]);
        let mut dup = 0;
        let mut conf = 0;
        for (seq, r) in records.iter().enumerate() {
            match tower.apply(r, seq as u64, &w) {
                ApplyOutcome::New => {}
                ApplyOutcome::Duplicate => dup += 1,
                ApplyOutcome::Conflict => conf += 1,
            }
        }
        let (batch, report) = clean_records(&records);
        assert_eq!(dup, report.duplicates_removed);
        assert_eq!(conf, report.conflicts_resolved);
        assert_eq!(tower.sessions().len(), batch.len());
        for (s, b) in tower.sessions().iter().zip(&batch) {
            assert_eq!(
                (s.user_id, s.start_s, s.end_s, s.bytes),
                (b.user_id, b.start_s, b.end_s, b.bytes)
            );
        }
    }

    #[test]
    fn views_are_a_pure_function_of_sessions() {
        let w = window();
        let mut live = TowerState::new(&w, &[1, 7, 14]);
        for (seq, r) in [rec(1, 0, 100), rec(2, 1200, 40), rec(1, 0, 300)]
            .iter()
            .enumerate()
        {
            live.apply(r, seq as u64, &w);
        }
        let rebuilt = TowerState::from_sessions(live.sessions().to_vec(), &w, &[1, 7, 14]);
        // The conflict forced a rebuild, so live state IS the pure
        // rebuild — bit-identical, not merely close.
        assert_eq!(live.traffic(), rebuilt.traffic());
        assert_eq!(live.line_amplitudes(), rebuilt.line_amplitudes());
        assert_eq!(live.zscore_moments(), rebuilt.zscore_moments());
    }

    #[test]
    fn snapshot_codec_roundtrips_exactly() {
        let snap = ServeSnapshot {
            next_seq: 42,
            records: 40,
            malformed: 2,
            duplicates: 3,
            conflicts: 1,
            towers: vec![
                (
                    0,
                    vec![Session {
                        user_id: 7,
                        start_s: 100,
                        end_s: 700,
                        bytes: 999,
                        first_seq: 0,
                    }],
                ),
                (
                    5,
                    vec![
                        Session {
                            user_id: 1,
                            start_s: 0,
                            end_s: 600,
                            bytes: 1,
                            first_seq: 3,
                        },
                        Session {
                            user_id: 2,
                            start_s: 0,
                            end_s: 1200,
                            bytes: 2,
                            first_seq: 9,
                        },
                    ],
                ),
            ],
        };
        let mut body = String::new();
        SnapshotCodec.encode(&snap, &mut body).unwrap();
        let mut reader = BodyReader::new(&body, 0);
        let back = SnapshotCodec.decode(&mut reader).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn codec_rejects_garbage() {
        let mut reader = BodyReader::new("counts 1 2 x 4 5\ntowers 0\n", 0);
        assert!(SnapshotCodec.decode(&mut reader).is_err());
        let mut reader = BodyReader::new("nope\n", 0);
        assert!(SnapshotCodec.decode(&mut reader).is_err());
    }
}
