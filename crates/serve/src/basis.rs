//! Online classification against a frozen batch basis.
//!
//! The daemon does not re-cluster on every snapshot: the batch study
//! (or `towerlens-cli analyze`) discovers the city's traffic patterns
//! once, and `serve` classifies live towers against those **frozen
//! centroids** by nearest-centroid assignment in z-scored feature
//! space. The basis file is the analyze graph's `cluster.ckpt`
//! checkpoint verbatim — same magic, same body codec — so a batch run
//! and a streaming run literally share the artifact.

use std::path::Path;

use towerlens_core::engine::checkpoint::BodyReader;
use towerlens_core::engine::{decode_patterns, fsck_file};
use towerlens_core::identifier::IdentifiedPatterns;

use crate::error::{io_err, ServeError};

/// A frozen classification basis: the batch-study patterns plus the
/// provenance `doctor` and the report print.
#[derive(Debug, Clone)]
pub struct Basis {
    /// The decoded batch patterns (centroids in z-scored space).
    pub patterns: IdentifiedPatterns,
    /// The stage name recorded in the checkpoint header.
    pub stage: String,
    /// The configuration fingerprint the basis was written under.
    pub fingerprint: u64,
}

impl Basis {
    /// Feature dimensionality of the centroids (0 when empty).
    pub fn dims(&self) -> usize {
        self.patterns.centroids.first().map_or(0, Vec::len)
    }
}

/// Loads a basis checkpoint: structural fsck first (checksum, line
/// count, `end` sentinel), then the patterns decode.
///
/// # Errors
/// [`ServeError::Snapshot`] when the file fails fsck,
/// [`ServeError::Config`] when the body is not a patterns artifact.
pub fn load_basis(path: &Path) -> Result<Basis, ServeError> {
    let info = fsck_file(path, None)?;
    let text = std::fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    let mut reader = BodyReader::new(&text, 0);
    // Skip the verified header: magic, stage, fingerprint, card
    // count, the card lines, data marker, checksum.
    for _ in 0..6 + info.cards.len() {
        reader
            .line()
            .map_err(|e| ServeError::Config(format!("basis header: {e}")))?;
    }
    let patterns = decode_patterns(&mut reader)
        .map_err(|e| ServeError::Config(format!("basis {}: {e}", path.display())))?;
    if patterns.centroids.is_empty() {
        return Err(ServeError::Config(format!(
            "basis {}: no centroids",
            path.display()
        )));
    }
    Ok(Basis {
        patterns,
        stage: info.stage,
        fingerprint: info.fingerprint,
    })
}

/// Assigns each z-scored vector to its nearest centroid (squared
/// Euclidean distance; ties break to the lowest centroid index, so
/// assignment is deterministic). Returns one label per vector.
///
/// # Errors
/// [`ServeError::Config`] when a vector's dimensionality does not
/// match the basis.
pub fn classify(vectors: &[Vec<f64>], basis: &Basis) -> Result<Vec<usize>, ServeError> {
    let dims = basis.dims();
    let mut labels = Vec::with_capacity(vectors.len());
    for v in vectors {
        if v.len() != dims {
            return Err(ServeError::Config(format!(
                "basis dimensionality {} does not match live vectors of length {} \
                 (was the basis built over a different --days window?)",
                dims,
                v.len()
            )));
        }
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, c) in basis.patterns.centroids.iter().enumerate() {
            let d: f64 = v.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        labels.push(best);
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use towerlens_core::identifier::PatternIdentifier;

    /// Builds a real [`IdentifiedPatterns`] via the batch identifier,
    /// then pins the centroids to the given set (the other fields are
    /// irrelevant to classification).
    fn basis_of(centroids: Vec<Vec<f64>>) -> Basis {
        let dims = centroids[0].len();
        let seed: Vec<Vec<f64>> = (0..4)
            .map(|i| (0..dims).map(|d| (i * dims + d) as f64).collect())
            .collect();
        let mut patterns = PatternIdentifier::default().identify(&seed).unwrap();
        patterns.centroids = centroids;
        Basis {
            patterns,
            stage: "cluster".into(),
            fingerprint: 0,
        }
    }

    #[test]
    fn classify_picks_nearest_with_low_index_ties() {
        let basis = basis_of(vec![vec![0.0, 0.0], vec![2.0, 0.0], vec![0.0, 2.0]]);
        let labels = classify(
            &[
                vec![0.1, 0.1],
                vec![1.9, -0.1],
                vec![1.0, 0.0], // exactly between 0 and 1 → lowest index
            ],
            &basis,
        )
        .unwrap();
        assert_eq!(labels, vec![0, 1, 0]);
    }

    #[test]
    fn classify_rejects_dimension_mismatch() {
        let basis = basis_of(vec![vec![0.0, 0.0]]);
        let err = classify(&[vec![1.0, 2.0, 3.0]], &basis).unwrap_err();
        assert!(matches!(err, ServeError::Config(_)));
    }
}
