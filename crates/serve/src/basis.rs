//! Online classification against a frozen batch basis.
//!
//! The daemon does not re-cluster on every snapshot: the batch study
//! (or `towerlens-cli analyze`) discovers the city's traffic patterns
//! once, and `serve` classifies live towers against those **frozen
//! centroids** by nearest-centroid assignment in z-scored feature
//! space. Two basis formats are accepted, sniffed by magic bytes:
//! the versioned query artifact (`analyze --snapshot` /
//! `study --snapshot` — the preferred, checksummed form) and the
//! legacy `cluster.ckpt` checkpoint the analyze graph writes, so a
//! batch run and a streaming run literally share the artifact.

use std::path::Path;

use towerlens_core::engine::checkpoint::BodyReader;
use towerlens_core::engine::{decode_patterns, fsck_file};

use crate::error::{io_err, ServeError};

/// A frozen classification basis: the batch centroids plus the
/// provenance `doctor` and the report print.
#[derive(Debug, Clone)]
pub struct Basis {
    /// The frozen batch centroids (in z-scored space).
    pub centroids: Vec<Vec<f64>>,
    /// The number of patterns the batch run settled on.
    pub k: usize,
    /// The dendrogram cut threshold the batch run used.
    pub threshold: f64,
    /// Provenance: the checkpoint's stage name, or `artifact` for a
    /// versioned query artifact.
    pub stage: String,
    /// The configuration fingerprint the basis was written under.
    pub fingerprint: u64,
}

impl Basis {
    /// Feature dimensionality of the centroids (0 when empty).
    pub fn dims(&self) -> usize {
        self.centroids.first().map_or(0, Vec::len)
    }
}

/// Loads a basis file, sniffing the format from its magic bytes: a
/// versioned query artifact decodes through the checksummed section
/// codec; anything else takes the legacy checkpoint path (structural
/// fsck, then the patterns decode).
///
/// # Errors
/// [`ServeError::Snapshot`] when a checkpoint fails fsck,
/// [`ServeError::Config`] when the body does not decode or carries no
/// centroids.
pub fn load_basis(path: &Path) -> Result<Basis, ServeError> {
    let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
    let basis = if towerlens_artifact::sniff_magic(&bytes) {
        let snap = towerlens_artifact::Snapshot::decode(&bytes)
            .map_err(|e| ServeError::Config(format!("basis {}: {e}", path.display())))?;
        Basis {
            centroids: snap.centroids,
            k: snap.meta.k,
            threshold: snap.meta.threshold,
            stage: "artifact".to_string(),
            fingerprint: snap.meta.fingerprint,
        }
    } else {
        let info = fsck_file(path, None)?;
        let text = String::from_utf8(bytes)
            .map_err(|e| ServeError::Config(format!("basis {}: {e}", path.display())))?;
        let mut reader = BodyReader::new(&text, 0);
        // Skip the verified header: magic, stage, fingerprint, card
        // count, the card lines, data marker, checksum.
        for _ in 0..6 + info.cards.len() {
            reader
                .line()
                .map_err(|e| ServeError::Config(format!("basis header: {e}")))?;
        }
        let patterns = decode_patterns(&mut reader)
            .map_err(|e| ServeError::Config(format!("basis {}: {e}", path.display())))?;
        Basis {
            centroids: patterns.centroids,
            k: patterns.k,
            threshold: patterns.threshold,
            stage: info.stage,
            fingerprint: info.fingerprint,
        }
    };
    if basis.centroids.is_empty() {
        return Err(ServeError::Config(format!(
            "basis {}: no centroids",
            path.display()
        )));
    }
    Ok(basis)
}

/// Assigns each z-scored vector to its nearest centroid (squared
/// Euclidean distance; ties break to the lowest centroid index, so
/// assignment is deterministic). Returns one label per vector.
///
/// # Errors
/// [`ServeError::Config`] when a vector's dimensionality does not
/// match the basis.
pub fn classify(vectors: &[Vec<f64>], basis: &Basis) -> Result<Vec<usize>, ServeError> {
    let dims = basis.dims();
    let mut labels = Vec::with_capacity(vectors.len());
    for v in vectors {
        if v.len() != dims {
            return Err(ServeError::Config(format!(
                "basis dimensionality {} does not match live vectors of length {} \
                 (was the basis built over a different --days window?)",
                dims,
                v.len()
            )));
        }
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, c) in basis.centroids.iter().enumerate() {
            let d: f64 = v.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        labels.push(best);
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn basis_of(centroids: Vec<Vec<f64>>) -> Basis {
        Basis {
            k: centroids.len(),
            centroids,
            threshold: 0.0,
            stage: "cluster".into(),
            fingerprint: 0,
        }
    }

    #[test]
    fn classify_picks_nearest_with_low_index_ties() {
        let basis = basis_of(vec![vec![0.0, 0.0], vec![2.0, 0.0], vec![0.0, 2.0]]);
        let labels = classify(
            &[
                vec![0.1, 0.1],
                vec![1.9, -0.1],
                vec![1.0, 0.0], // exactly between 0 and 1 → lowest index
            ],
            &basis,
        )
        .unwrap();
        assert_eq!(labels, vec![0, 1, 0]);
    }

    #[test]
    fn classify_rejects_dimension_mismatch() {
        let basis = basis_of(vec![vec![0.0, 0.0]]);
        let err = classify(&[vec![1.0, 2.0, 3.0]], &basis).unwrap_err();
        assert!(matches!(err, ServeError::Config(_)));
    }

    #[test]
    fn load_basis_sniffs_the_artifact_format() {
        let dir = std::env::temp_dir().join("towerlens-basis-artifact");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let snap = towerlens_artifact::format::sample_snapshot();
        let path = dir.join("study.artifact");
        towerlens_artifact::write_snapshot(&path, &snap).unwrap();
        let basis = load_basis(&path).unwrap();
        assert_eq!(basis.stage, "artifact");
        assert_eq!(basis.fingerprint, snap.meta.fingerprint);
        assert_eq!(basis.k, snap.meta.k);
        assert_eq!(basis.centroids, snap.centroids);
        assert_eq!(basis.dims(), 8);

        // A corrupted artifact is rejected with a typed error, not
        // classified against silently.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let bad = dir.join("bad.artifact");
        std::fs::write(&bad, &bytes).unwrap();
        assert!(matches!(
            load_basis(&bad).unwrap_err(),
            ServeError::Config(_)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
