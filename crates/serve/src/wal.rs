//! The segment-based write-ahead log.
//!
//! Every non-empty source line is assigned a monotonically increasing
//! sequence number and appended to the current segment *before* it is
//! acknowledged (counted, dispatched to a shard). A crash therefore
//! loses at most lines that were never acknowledged, and those are
//! re-read from the source on restart under the same sequence numbers
//! — zero-loss, no double-count.
//!
//! On-disk layout (`<data>/wal/seg-00000000.wal`, one file per
//! segment):
//!
//! ```text
//! towerlens-wal v1 segment <index>
//! r <seq> <checksum16> <raw source line>     (per record)
//! seal <n_records> <checksum16>              (sealed segments only)
//! ```
//!
//! The per-entry checksum is FNV-1a over `"<seq>\t<line>"`, so a
//! flipped byte in either field is caught. The seal checksum chains
//! every entry checksum in the segment, so a sealed segment vouches
//! for its whole body. A writer **never appends to a pre-existing
//! segment**: each process run opens `max(existing) + 1`, lazily on
//! first append, which keeps the "sealed segments are immutable"
//! invariant trivial.
//!
//! Replay tolerates exactly one kind of damage: a torn *final* line of
//! an *unsealed* segment — the write that was interrupted mid-flight
//! and never acknowledged. Damage anywhere else means acknowledged
//! data was lost and replay fails loudly, as does any gap in the
//! sequence numbering.

use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use towerlens_artifact::fnv1a64;

use crate::error::{io_err, ServeError};

/// Magic prefix of every segment header.
pub const WAL_MAGIC: &str = "towerlens-wal v1 segment";

/// The WAL subdirectory under a serve data directory.
pub const WAL_DIR: &str = "wal";

/// The segment file of `index` under `wal_dir`.
pub fn segment_path(wal_dir: &Path, index: u64) -> PathBuf {
    wal_dir.join(format!("seg-{index:08}.wal"))
}

/// FNV-1a checksum of one WAL entry (`"<seq>\t<line>"`).
pub fn entry_checksum(seq: u64, line: &str) -> u64 {
    fnv1a64(format!("{seq}\t{line}").as_bytes())
}

/// Lists segment indices present in `wal_dir`, ascending. A missing
/// directory is an empty WAL.
fn segment_indices(wal_dir: &Path) -> Result<Vec<u64>, ServeError> {
    let entries = match std::fs::read_dir(wal_dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err(wal_dir, e)),
    };
    let mut indices = Vec::new();
    for entry in entries {
        let path = entry.map_err(|e| io_err(wal_dir, e))?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(idx) = name
            .strip_prefix("seg-")
            .and_then(|rest| rest.strip_suffix(".wal"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            indices.push(idx);
        }
    }
    indices.sort_unstable();
    Ok(indices)
}

/// True when a body line is a well-formed entry or seal on its own:
/// an `r` entry whose checksum verifies, or a structurally complete
/// seal footer. Anything else on a segment's final line is the torn
/// remnant of a crash-interrupted write. (A seal's hash is *not*
/// verified here — a complete seal with a wrong hash is corruption,
/// which repair must leave for replay to report.)
fn line_is_wellformed(raw: &str) -> bool {
    if let Some(rest) = raw.strip_prefix("r ") {
        let mut parts = rest.splitn(3, ' ');
        let parsed = (|| {
            let seq = parts.next()?.parse::<u64>().ok()?;
            let checksum = u64::from_str_radix(parts.next()?, 16).ok()?;
            let line = parts.next()?;
            Some(entry_checksum(seq, line) == checksum)
        })();
        return parsed.unwrap_or(false);
    }
    if let Some(rest) = raw.strip_prefix("seal ") {
        let mut fields = rest.split(' ');
        let declared = fields.next().and_then(|s| s.parse::<u64>().ok());
        let hash = fields.next().and_then(|s| u64::from_str_radix(s, 16).ok());
        return matches!((declared, hash, fields.next()), (Some(_), Some(_), None));
    }
    false
}

/// Truncates the torn final write of segment `index`, if there is
/// one: a trailing line that is neither a checksum-valid entry nor a
/// complete seal footer is dropped (it was never acknowledged), and a
/// file torn before its header ever landed is removed outright so the
/// index is reused. Damage this cannot explain — a bad line that is
/// not the final one, a seal-hash mismatch — is left untouched for
/// replay to report. The rewrite goes through the temp + fsync +
/// rename discipline.
fn repair_torn_tail(wal_dir: &Path, index: u64) -> Result<(), ServeError> {
    let path = segment_path(wal_dir, index);
    let text = std::fs::read_to_string(&path).map_err(|e| io_err(&path, e))?;
    let lines: Vec<&str> = text.split('\n').collect();
    let lines: &[&str] = match lines.split_last() {
        Some((&"", rest)) => rest,
        _ => &lines,
    };
    let header_ok = lines
        .first()
        .is_some_and(|h| *h == format!("{WAL_MAGIC} {index}"));
    if !header_ok {
        // A torn header can only be the crash-interrupted first
        // write; with any body present this is real corruption.
        if lines.len() <= 1 {
            std::fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
        }
        return Ok(());
    }
    let torn = lines.len() > 1 && !line_is_wellformed(lines[lines.len() - 1]);
    if !torn {
        return Ok(());
    }
    let mut kept = lines[..lines.len() - 1].join("\n");
    kept.push('\n');
    let tmp = wal_dir.join(format!("seg-{index:08}.repair"));
    std::fs::write(&tmp, &kept).map_err(|e| io_err(&tmp, e))?;
    std::fs::File::open(&tmp)
        .and_then(|f| f.sync_all())
        .map_err(|e| io_err(&tmp, e))?;
    std::fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
    if let Ok(d) = std::fs::File::open(wal_dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// The appending side of the WAL.
///
/// Writes are buffered; [`WalWriter::sync`] flushes and fsyncs, and
/// only synced entries count as acknowledged. The segment file (and
/// its header) is created lazily on the first append, so a run that
/// ingests nothing leaves no empty segment behind.
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    segment_index: u64,
    file: Option<BufWriter<std::fs::File>>,
    entries_in_segment: u64,
    /// Chained entry checksums, the seal hash input.
    seal_input: String,
}

impl WalWriter {
    /// Opens a writer over `wal_dir` (created if needed), positioned
    /// at a fresh segment after every segment already on disk.
    ///
    /// # Errors
    /// [`ServeError::Io`] on directory failures.
    pub fn open(wal_dir: &Path) -> Result<Self, ServeError> {
        std::fs::create_dir_all(wal_dir).map_err(|e| io_err(wal_dir, e))?;
        let indices = segment_indices(wal_dir)?;
        // Replay tolerates a torn final write only while its segment
        // is the *last* one. This writer is about to start a newer
        // segment, so the tear must be repaired now — truncating it is
        // safe by the ack contract (a torn line was never
        // acknowledged), and leaving it would make every later replay
        // reject the directory.
        if let Some(&last) = indices.last() {
            repair_torn_tail(wal_dir, last)?;
        }
        let next = segment_indices(wal_dir)?
            .last()
            .map(|&i| i + 1)
            .unwrap_or(0);
        Ok(WalWriter {
            dir: wal_dir.to_path_buf(),
            segment_index: next,
            file: None,
            entries_in_segment: 0,
            seal_input: String::new(),
        })
    }

    /// The index of the segment currently being written (or about to
    /// be created).
    pub fn segment_index(&self) -> u64 {
        self.segment_index
    }

    /// Entries appended to the current segment so far.
    pub fn entries_in_segment(&self) -> u64 {
        self.entries_in_segment
    }

    /// Appends one entry (buffered — not yet durable; see
    /// [`WalWriter::sync`]).
    ///
    /// # Errors
    /// [`ServeError::Io`] on write failure.
    pub fn append(&mut self, seq: u64, line: &str) -> Result<(), ServeError> {
        let path = segment_path(&self.dir, self.segment_index);
        if self.file.is_none() {
            let f = std::fs::File::create(&path).map_err(|e| io_err(&path, e))?;
            let mut w = BufWriter::new(f);
            writeln!(w, "{WAL_MAGIC} {}", self.segment_index).map_err(|e| io_err(&path, e))?;
            self.file = Some(w);
        }
        let checksum = entry_checksum(seq, line);
        let w = self.file.as_mut().expect("file opened above");
        writeln!(w, "r {seq} {checksum:016x} {line}").map_err(|e| io_err(&path, e))?;
        self.entries_in_segment += 1;
        self.seal_input.push_str(&format!("{checksum:016x}\n"));
        Ok(())
    }

    /// Flushes and fsyncs the current segment. Entries are
    /// acknowledged only after this returns.
    ///
    /// # Errors
    /// [`ServeError::Io`] on flush/fsync failure.
    pub fn sync(&mut self) -> Result<(), ServeError> {
        let path = segment_path(&self.dir, self.segment_index);
        if let Some(w) = self.file.as_mut() {
            w.flush().map_err(|e| io_err(&path, e))?;
            w.get_ref().sync_all().map_err(|e| io_err(&path, e))?;
        }
        Ok(())
    }

    /// Seals the current segment (writes the footer, fsyncs, closes)
    /// and advances to the next segment index. A no-op segment (zero
    /// entries, no file) is skipped without consuming an index.
    /// Returns `true` when a segment was actually sealed.
    ///
    /// # Errors
    /// [`ServeError::Io`] on write/fsync failure.
    pub fn rotate(&mut self) -> Result<bool, ServeError> {
        let Some(mut w) = self.file.take() else {
            return Ok(false);
        };
        let path = segment_path(&self.dir, self.segment_index);
        let hash = fnv1a64(self.seal_input.as_bytes());
        writeln!(w, "seal {} {hash:016x}", self.entries_in_segment)
            .map_err(|e| io_err(&path, e))?;
        w.flush().map_err(|e| io_err(&path, e))?;
        w.get_ref().sync_all().map_err(|e| io_err(&path, e))?;
        drop(w);
        // Persist the new file's directory entry, best-effort (as the
        // checkpoint store does).
        if let Ok(d) = std::fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.segment_index += 1;
        self.entries_in_segment = 0;
        self.seal_input.clear();
        Ok(true)
    }
}

/// One replayed WAL entry: the sequence number and the raw source
/// line it acknowledged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalEntry {
    /// The entry's global sequence number.
    pub seq: u64,
    /// The raw source line, verbatim.
    pub line: String,
}

/// What a full WAL replay recovered.
#[derive(Debug, Clone, Default)]
pub struct ReplayOutcome {
    /// All valid entries, in sequence order.
    pub entries: Vec<WalEntry>,
    /// The next sequence number to assign (= entries recovered).
    pub next_seq: u64,
    /// Sealed segments on disk.
    pub sealed_segments: u64,
    /// Torn final lines tolerated (unacknowledged writes dropped).
    pub torn_tails: u64,
}

/// What one segment scan found (shared by replay and fsck).
#[derive(Debug, Clone)]
struct SegmentScan {
    entries: Vec<WalEntry>,
    sealed: bool,
    torn: bool,
    /// First structural problem, as `(1-based line, reason)`.
    error: Option<(usize, String)>,
}

/// Scans one segment's text. `expected_seq` is the sequence number the
/// first entry must carry; `is_last` permits a torn final line.
fn scan_segment(text: &str, index: u64, mut expected_seq: u64, is_last: bool) -> SegmentScan {
    let mut scan = SegmentScan {
        entries: Vec::new(),
        sealed: false,
        torn: false,
        error: None,
    };
    let lines: Vec<&str> = text.split('\n').collect();
    // A trailing newline yields one empty final element; real content
    // never contains empty lines, so strip exactly that artifact.
    let lines: &[&str] = match lines.split_last() {
        Some((&"", rest)) => rest,
        _ => &lines,
    };
    let fail = |line_no: usize, reason: String, scan: &mut SegmentScan| {
        scan.error = Some((line_no, reason));
    };
    let Some((header, body)) = lines.split_first() else {
        // Zero-byte file: a crash between create and the header write.
        scan.torn = is_last;
        if !is_last {
            fail(1, "empty segment file".to_string(), &mut scan);
        }
        return scan;
    };
    let expected_header = format!("{WAL_MAGIC} {index}");
    if *header != expected_header {
        // A torn header can only be the crash-interrupted last file.
        if is_last && body.is_empty() {
            scan.torn = true;
        } else {
            fail(1, format!("bad header `{header}`"), &mut scan);
        }
        return scan;
    }
    let mut seal_input = String::new();
    for (i, raw) in body.iter().enumerate() {
        let line_no = i + 2;
        let at_final_line = i + 1 == body.len();
        if scan.sealed {
            fail(line_no, "content after seal".to_string(), &mut scan);
            return scan;
        }
        if let Some(rest) = raw.strip_prefix("seal ") {
            let mut fields = rest.split(' ');
            let declared = fields.next().and_then(|s| s.parse::<u64>().ok());
            let hash = fields.next().and_then(|s| u64::from_str_radix(s, 16).ok());
            match (declared, hash, fields.next()) {
                (Some(n), Some(h), None) => {
                    if n != scan.entries.len() as u64 {
                        fail(
                            line_no,
                            format!(
                                "seal declares {n} records, segment has {}",
                                scan.entries.len()
                            ),
                            &mut scan,
                        );
                        return scan;
                    }
                    if h != fnv1a64(seal_input.as_bytes()) {
                        fail(line_no, "seal checksum mismatch".to_string(), &mut scan);
                        return scan;
                    }
                    scan.sealed = true;
                    continue;
                }
                _ => {
                    if is_last && at_final_line {
                        scan.torn = true;
                        return scan;
                    }
                    fail(line_no, format!("bad seal line `{raw}`"), &mut scan);
                    return scan;
                }
            }
        }
        // Entry line: `r <seq> <hex16> <raw line>`.
        let parsed = raw.strip_prefix("r ").and_then(|rest| {
            let mut parts = rest.splitn(3, ' ');
            let seq = parts.next()?.parse::<u64>().ok()?;
            let checksum = u64::from_str_radix(parts.next()?, 16).ok()?;
            let line = parts.next()?;
            (entry_checksum(seq, line) == checksum).then(|| (seq, line.to_string()))
        });
        match parsed {
            Some((seq, line)) => {
                if seq != expected_seq {
                    fail(
                        line_no,
                        format!("sequence gap: expected {expected_seq}, found {seq}"),
                        &mut scan,
                    );
                    return scan;
                }
                seal_input.push_str(&format!("{:016x}\n", entry_checksum(seq, &line)));
                scan.entries.push(WalEntry { seq, line });
                expected_seq += 1;
            }
            None => {
                // A damaged entry is tolerable only as the torn final
                // line of the unsealed last segment — the one write a
                // crash can legitimately interrupt.
                if is_last && at_final_line {
                    scan.torn = true;
                    return scan;
                }
                fail(line_no, format!("bad entry `{raw}`"), &mut scan);
                return scan;
            }
        }
    }
    scan
}

/// Replays every segment under `wal_dir` in order, verifying per-entry
/// checksums, seals, and strict sequence contiguity from 0.
///
/// # Errors
/// * [`ServeError::Wal`] for structural damage outside the tolerated
///   torn tail,
/// * [`ServeError::SequenceGap`] for missing segment files,
/// * [`ServeError::Io`] on read failures.
pub fn replay(wal_dir: &Path) -> Result<ReplayOutcome, ServeError> {
    let indices = segment_indices(wal_dir)?;
    let mut out = ReplayOutcome::default();
    for (pos, &index) in indices.iter().enumerate() {
        if index != pos as u64 {
            return Err(ServeError::SequenceGap {
                expected: pos as u64,
                found: index,
                segment: index,
            });
        }
        let path = segment_path(wal_dir, index);
        let text = std::fs::read_to_string(&path).map_err(|e| io_err(&path, e))?;
        let is_last = pos + 1 == indices.len();
        let scan = scan_segment(&text, index, out.next_seq, is_last);
        if let Some((line, reason)) = scan.error {
            if reason.starts_with("sequence gap") {
                return Err(ServeError::SequenceGap {
                    expected: out.next_seq + scan.entries.len() as u64,
                    found: 0, // rendered reason carries the real value
                    segment: index,
                }
                .specialise(reason));
            }
            return Err(ServeError::Wal {
                segment: index,
                line,
                reason,
            });
        }
        out.next_seq += scan.entries.len() as u64;
        out.entries.extend(scan.entries);
        out.sealed_segments += u64::from(scan.sealed);
        out.torn_tails += u64::from(scan.torn);
    }
    Ok(out)
}

impl ServeError {
    /// Rebuilds a sequence-gap error from the scan's rendered reason
    /// (`sequence gap: expected E, found F`), preserving the numbers.
    fn specialise(self, reason: String) -> ServeError {
        let ServeError::SequenceGap { segment, .. } = self else {
            return self;
        };
        let nums: Vec<u64> = reason
            .split(|c: char| !c.is_ascii_digit())
            .filter(|s| !s.is_empty())
            .filter_map(|s| s.parse().ok())
            .collect();
        match nums.as_slice() {
            [expected, found] => ServeError::SequenceGap {
                expected: *expected,
                found: *found,
                segment,
            },
            _ => ServeError::Wal {
                segment,
                line: 0,
                reason,
            },
        }
    }
}

/// One segment's health, as reported by [`fsck_wal`].
#[derive(Debug, Clone)]
pub struct WalSegmentFsck {
    /// The segment file's name.
    pub file: String,
    /// The segment index.
    pub segment: u64,
    /// Valid entries found.
    pub entries: u64,
    /// First sequence number in the segment, when any.
    pub first_seq: Option<u64>,
    /// Last sequence number in the segment, when any.
    pub last_seq: Option<u64>,
    /// Whether the segment carries a valid seal footer.
    pub sealed: bool,
    /// Whether a torn (tolerated) final line was found.
    pub torn_tail: bool,
    /// The first structural problem, when the segment is damaged.
    pub error: Option<String>,
}

/// Structurally checks every WAL segment under `wal_dir` without
/// mutating anything: header, per-entry checksums, seal footers, and
/// cross-segment sequence contiguity. One damaged segment never hides
/// the health of the others — this is `doctor`'s WAL table.
///
/// # Errors
/// Only directory-level I/O failures; per-segment damage is a row.
pub fn fsck_wal(wal_dir: &Path) -> Result<Vec<WalSegmentFsck>, ServeError> {
    let indices = segment_indices(wal_dir)?;
    let mut rows = Vec::with_capacity(indices.len());
    let mut expected_seq = 0u64;
    for (pos, &index) in indices.iter().enumerate() {
        let path = segment_path(wal_dir, index);
        let file = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let is_last = pos + 1 == indices.len();
        let mut row = WalSegmentFsck {
            file,
            segment: index,
            entries: 0,
            first_seq: None,
            last_seq: None,
            sealed: false,
            torn_tail: false,
            error: None,
        };
        if index != pos as u64 {
            row.error = Some(format!("segment gap: expected index {pos}, found {index}"));
            rows.push(row);
            // Resynchronise so later segments are judged on their own
            // numbering rather than cascading the gap.
            expected_seq = u64::MAX;
            continue;
        }
        match std::fs::read_to_string(&path) {
            Err(e) => row.error = Some(e.to_string()),
            Ok(text) => {
                let start = if expected_seq == u64::MAX {
                    // After a gap, accept whatever the segment starts at.
                    first_entry_seq(&text).unwrap_or(0)
                } else {
                    expected_seq
                };
                let scan = scan_segment(&text, index, start, is_last);
                row.entries = scan.entries.len() as u64;
                row.first_seq = scan.entries.first().map(|e| e.seq);
                row.last_seq = scan.entries.last().map(|e| e.seq);
                row.sealed = scan.sealed;
                row.torn_tail = scan.torn;
                row.error = scan
                    .error
                    .map(|(line, reason)| format!("line {line}: {reason}"));
                if row.error.is_none() {
                    expected_seq = start + scan.entries.len() as u64;
                }
            }
        }
        rows.push(row);
    }
    Ok(rows)
}

/// The sequence number of the first parseable entry, for resyncing
/// fsck after a segment gap.
fn first_entry_seq(text: &str) -> Option<u64> {
    text.lines().find_map(|l| {
        l.strip_prefix("r ")
            .and_then(|rest| rest.split(' ').next())
            .and_then(|s| s.parse().ok())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("towerlens-wal-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn write_entries(dir: &Path, lines: &[&str], per_segment: usize) -> WalWriter {
        let mut w = WalWriter::open(dir).unwrap();
        for (seq, line) in lines.iter().enumerate() {
            w.append(seq as u64, line).unwrap();
            if w.entries_in_segment() as usize >= per_segment {
                w.rotate().unwrap();
            }
        }
        w.sync().unwrap();
        w
    }

    #[test]
    fn roundtrip_across_segments() {
        let dir = temp_dir("roundtrip");
        let lines = [
            "1\t0\t600\t0\t10\taddr one",
            "2\t0\t600\t1\t20\taddr two",
            "junk",
        ];
        let mut w = write_entries(&dir, &lines, 2);
        w.rotate().unwrap();
        let out = replay(&dir).unwrap();
        assert_eq!(out.next_seq, 3);
        assert_eq!(out.sealed_segments, 2);
        assert_eq!(out.torn_tails, 0);
        assert_eq!(
            out.entries
                .iter()
                .map(|e| e.line.as_str())
                .collect::<Vec<_>>(),
            lines.to_vec()
        );
        assert_eq!(out.entries[2].seq, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn new_writer_never_appends_to_existing_segments() {
        let dir = temp_dir("fresh-segment");
        let mut w = write_entries(&dir, &["a", "b"], 10);
        w.rotate().unwrap();
        let w2 = WalWriter::open(&dir).unwrap();
        assert_eq!(w2.segment_index(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_line_of_unsealed_segment_is_tolerated() {
        let dir = temp_dir("torn");
        write_entries(&dir, &["a", "b"], 10);
        let path = segment_path(&dir, 0);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("r 2 00ff"); // interrupted mid-write
        std::fs::write(&path, text).unwrap();
        let out = replay(&dir).unwrap();
        assert_eq!(out.next_seq, 2);
        assert_eq!(out.torn_tails, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_byte_mid_segment_is_an_error() {
        let dir = temp_dir("flip");
        write_entries(&dir, &["aaaa", "bbbb"], 10);
        let path = segment_path(&dir, 0);
        let text = std::fs::read_to_string(&path)
            .unwrap()
            .replace("aaaa", "aaXa");
        std::fs::write(&path, text).unwrap();
        let err = replay(&dir).unwrap_err();
        assert!(
            matches!(
                err,
                ServeError::Wal {
                    segment: 0,
                    line: 2,
                    ..
                }
            ),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sequence_gap_is_detected() {
        let dir = temp_dir("gap");
        let mut w = WalWriter::open(&dir).unwrap();
        w.append(0, "a").unwrap();
        w.append(2, "c").unwrap(); // seq 1 missing
        w.sync().unwrap();
        let err = replay(&dir).unwrap_err();
        assert_eq!(
            err,
            ServeError::SequenceGap {
                expected: 1,
                found: 2,
                segment: 0
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_segment_file_is_a_gap() {
        let dir = temp_dir("missing-seg");
        let mut w = write_entries(&dir, &["a"], 1);
        w.append(1, "b").unwrap();
        w.rotate().unwrap();
        std::fs::remove_file(segment_path(&dir, 0)).unwrap();
        let err = replay(&dir).unwrap_err();
        assert!(matches!(err, ServeError::SequenceGap { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seal_vouches_for_its_body() {
        let dir = temp_dir("seal-check");
        let mut w = write_entries(&dir, &["a", "b"], 10);
        w.rotate().unwrap();
        let path = segment_path(&dir, 0);
        // Damage an entry but leave the seal: the seal catches it.
        let text = std::fs::read_to_string(&path).unwrap();
        let damaged = text.replacen("r 0 ", "r 9 ", 1);
        std::fs::write(&path, damaged).unwrap();
        assert!(replay(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsck_reports_per_segment_without_failing() {
        let dir = temp_dir("fsck");
        let lines = ["a", "b", "c", "d", "e"];
        write_entries(&dir, &lines, 2);
        let rows = fsck_wal(&dir).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows[0].sealed && rows[1].sealed && !rows[2].sealed);
        assert_eq!(rows[0].entries, 2);
        assert_eq!(rows[2].first_seq, Some(4));
        assert!(rows.iter().all(|r| r.error.is_none()));

        // Corrupt the middle segment: its row goes bad, others stay ok.
        let path = segment_path(&dir, 1);
        let text = std::fs::read_to_string(&path)
            .unwrap()
            .replace("r 2", "r 7");
        std::fs::write(&path, text).unwrap();
        let rows = fsck_wal(&dir).unwrap();
        assert!(rows[0].error.is_none());
        assert!(rows[1].error.is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_wal_dir_replays_to_nothing() {
        let dir = temp_dir("empty");
        let out = replay(&dir).unwrap();
        assert_eq!(out.next_seq, 0);
        assert!(out.entries.is_empty());
        assert!(fsck_wal(&dir).unwrap().is_empty());
    }
}
