//! Typed failures of the streaming ingestion daemon.

use towerlens_core::engine::CheckpointError;

/// Everything that can go wrong while serving a stream.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Filesystem failure, rendered (so the error stays `Clone`).
    Io {
        /// The path involved.
        path: String,
        /// The rendered `std::io::Error`.
        message: String,
    },
    /// A WAL segment is structurally damaged somewhere the replay
    /// cannot tolerate (anywhere but the torn final line of an
    /// unsealed segment).
    Wal {
        /// The damaged segment's index.
        segment: u64,
        /// 1-based line within the segment file.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// WAL entries are not contiguous: a sequence number was skipped
    /// or repeated, meaning acknowledged records were lost.
    SequenceGap {
        /// The sequence number the replay expected next.
        expected: u64,
        /// The sequence number actually found.
        found: u64,
        /// The segment where the gap surfaced.
        segment: u64,
    },
    /// Snapshot load/save failure (the checkpoint store's verdict).
    Snapshot(CheckpointError),
    /// Invalid daemon configuration (bad flag combination, malformed
    /// failpoint spec, basis/window mismatch).
    Config(String),
    /// The drain-time batch analysis over the recovered state failed.
    Analysis(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io { path, message } => write!(f, "{path}: {message}"),
            ServeError::Wal {
                segment,
                line,
                reason,
            } => write!(f, "wal segment {segment} line {line}: {reason}"),
            ServeError::SequenceGap {
                expected,
                found,
                segment,
            } => write!(
                f,
                "wal segment {segment}: sequence gap (expected seq {expected}, found {found})"
            ),
            ServeError::Snapshot(e) => write!(f, "snapshot: {e}"),
            ServeError::Config(reason) => write!(f, "configuration: {reason}"),
            ServeError::Analysis(reason) => write!(f, "drain analysis: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Snapshot(e)
    }
}

pub(crate) fn io_err(path: &std::path::Path, e: std::io::Error) -> ServeError {
    ServeError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}
