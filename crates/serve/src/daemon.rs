//! The streaming ingestion daemon: WAL-ahead acknowledgement, sharded
//! per-tower state with supervision, snapshot checkpoints at segment
//! boundaries, and a drain report that byte-matches the batch
//! pipeline.
//!
//! # Lifecycle
//!
//! 1. **Recover.** Load the latest snapshot (if any) from
//!    `data_dir/snap`, replay the WAL tail (`data_dir/wal`) past the
//!    snapshot's sequence horizon, and rebuild per-shard tower state.
//! 2. **Stream.** Read the source line by line. Every non-empty line
//!    is assigned the next global sequence number and appended to the
//!    WAL *before* it is parsed or applied — the WAL is the
//!    acknowledgement ledger, so a crash can lose only unacknowledged
//!    work. Parsed records are dispatched to shard workers
//!    (`cell_id % shards`) over bounded queues; a full queue counts a
//!    backpressure wait before blocking.
//! 3. **Checkpoint.** At every WAL segment boundary the daemon seals
//!    the segment, barriers the shards, and writes an fsync'd snapshot
//!    of the complete durable state. Recovery cost is therefore
//!    bounded by one segment regardless of stream length.
//! 4. **Drain.** At end of stream the daemon runs the *batch* analysis
//!    (vectorizer → spectral lines → pattern identifier → optional
//!    frozen-basis classification) over the recovered state and prints
//!    one deterministic report to stdout.
//!
//! # Determinism contract
//!
//! Everything printed to **stdout** is a pure function of the
//! acknowledged record stream. The durable state is integer-only
//! (sessions and counters); all floating-point state is rebuilt from
//! it. Killing the daemon at any point and restarting it over the same
//! source therefore converges to byte-identical stdout — the chaos
//! tests kill at every segment boundary and diff the output against an
//! uninterrupted run. Progress, supervision noise, and anything
//! wall-clock flavoured goes to stderr or the metrics registry.
//!
//! # Supervision
//!
//! Shard workers apply records under a deterministic seeded
//! [`RetryPolicy`]; a record that keeps failing is shed (counted, never
//! blocks the stream), and [`BreakerPolicy::threshold`] consecutive
//! sheds quarantine the shard — subsequent records for it are shed
//! deterministically instead of crashing the daemon. The
//! `TOWERLENS_FAULT_SHARD=<shard|*>:<n>` failpoint injects `n`
//! transient apply failures for chaos drills. Injected faults are a
//! live-process phenomenon: WAL replay during recovery applies records
//! directly (the ledger has already vouched for them).

use std::collections::BTreeMap;
use std::io::BufRead;
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Arc;

use towerlens_artifact::{fnv1a64, PublishKill, Publisher};
use towerlens_core::engine::{BreakerPolicy, CheckpointError, CheckpointStore, RetryPolicy};
use towerlens_core::error::CoreError;
use towerlens_core::freq::features_of_goertzel;
use towerlens_core::identifier::PatternIdentifier;
use towerlens_core::study::snapshot_from_parts;
use towerlens_dsp::goertzel;
use towerlens_obs::LazyCounter;
use towerlens_pipeline::vectorizer::{Vectorizer, VectorizerOptions};
use towerlens_pipeline::{principal_bins, FeatureSpace};
use towerlens_trace::clean::clean_records;
use towerlens_trace::record::LogRecord;
use towerlens_trace::time::TraceWindow;

use crate::basis::{classify, load_basis, Basis};
use crate::error::{io_err, ServeError};
use crate::state::{
    ApplyOutcome, ServeSnapshot, Session, SnapshotCodec, TowerState, SNAPSHOT_STAGE,
};
use crate::wal::{replay, WalWriter, WAL_DIR};

/// Snapshot subdirectory under the data directory.
pub const SNAP_DIR: &str = "snap";

static RECORDS_INGESTED: LazyCounter = LazyCounter::new("serve.records_ingested");
static MALFORMED: LazyCounter = LazyCounter::new("serve.malformed");
static WAL_SEGMENTS: LazyCounter = LazyCounter::new("serve.wal_segments");
static SNAPSHOTS: LazyCounter = LazyCounter::new("serve.snapshots");
static SHED_TOTAL: LazyCounter = LazyCounter::new("serve.shed_total");
static SHARD_RESTARTS: LazyCounter = LazyCounter::new("serve.shard_restarts");
static BACKPRESSURE_WAITS: LazyCounter = LazyCounter::new("serve.backpressure_waits");
static SHARDS_QUARANTINED: LazyCounter = LazyCounter::new("serve.shards_quarantined");
static GENERATIONS_PUBLISHED: LazyCounter = LazyCounter::new("serve.generations_published");

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The record source: a file or FIFO of tab-separated log lines.
    pub source: PathBuf,
    /// Durable state root (`wal/` and `snap/` live under it).
    pub data_dir: PathBuf,
    /// Analysis window length in days.
    pub days: usize,
    /// Shard worker count (towers are sharded by `cell_id % shards`).
    pub shards: usize,
    /// Records per WAL segment (= snapshot cadence).
    pub segment_records: u64,
    /// Bounded shard queue capacity.
    pub queue_cap: usize,
    /// Retries per failing shard apply / snapshot save.
    pub retries: u32,
    /// Frozen batch basis checkpoint to classify against, if any.
    pub basis: Option<PathBuf>,
    /// WAL flush+fsync cadence in records (1 = every record).
    pub flush_every: u64,
    /// Progress line to stderr every this many records (0 = only at
    /// segment boundaries).
    pub progress_every: u64,
    /// Generation-store directory to publish query artifacts into
    /// (`gen-N.artifact` + atomic `CURRENT` pointer) at every
    /// snapshot boundary, for `towerlens query --watch` hot reload.
    /// `None` = don't publish.
    pub publish: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            source: PathBuf::new(),
            data_dir: PathBuf::new(),
            days: 7,
            shards: 4,
            segment_records: 4096,
            queue_cap: 1024,
            retries: 2,
            basis: None,
            flush_every: 64,
            progress_every: 0,
            publish: None,
        }
    }
}

impl ServeConfig {
    /// The configuration fingerprint snapshots are written under.
    /// Deliberately covers only what durable state depends on (the
    /// window): re-sharding or retuning cadence must not invalidate
    /// a snapshot.
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(format!("serve v1 days={}", self.days).as_bytes())
    }

    fn validate(&self) -> Result<(), ServeError> {
        let bad = |reason: &str| Err(ServeError::Config(reason.to_string()));
        if self.days == 0 {
            return bad("--days must be at least 1");
        }
        if self.shards == 0 {
            return bad("--shards must be at least 1");
        }
        if self.segment_records == 0 {
            return bad("--segment-records must be at least 1");
        }
        if self.queue_cap == 0 {
            return bad("--queue-cap must be at least 1");
        }
        if self.flush_every == 0 {
            return bad("--flush-every must be at least 1");
        }
        Ok(())
    }

    fn window(&self) -> TraceWindow {
        TraceWindow::days(self.days)
    }

    /// The three maintained spectral bins: the paper's week / day /
    /// half-day lines when the window is whole weeks, their modular
    /// stand-ins otherwise.
    fn goertzel_bins(&self) -> Vec<usize> {
        let window = self.window();
        match principal_bins(&window) {
            Some(bins) => bins.to_vec(),
            None => [1usize, 7, 14]
                .iter()
                .map(|&b| b % window.n_bins.max(1))
                .collect(),
        }
    }
}

/// Global integer counters of the durable state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Counts {
    next_seq: u64,
    records: u64,
    malformed: u64,
    duplicates: u64,
    conflicts: u64,
}

/// The drain report: one deterministic stdout document.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Source lines acknowledged (= WAL entries = `next_seq`).
    pub source_lines: u64,
    /// Well-formed records among them.
    pub records: u64,
    /// Malformed lines (acknowledged, counted, skipped).
    pub malformed: u64,
    /// Byte-identical duplicates dropped.
    pub duplicates: u64,
    /// Conflicts resolved (larger byte count kept).
    pub conflicts: u64,
    /// Sessions kept after cleaning.
    pub sessions: u64,
    /// Towers with at least one session.
    pub active_towers: usize,
    /// Towers kept by z-score normalisation.
    pub vector_towers: usize,
    /// Towers dropped (zero-variance traffic).
    pub dropped_towers: usize,
    /// The spectral bins analysed.
    pub bins: Vec<usize>,
    /// Whether the bins are the paper's whole-week principal lines.
    pub whole_weeks: bool,
    /// Mean Goertzel amplitude per bin over kept towers' raw traffic.
    pub line_amplitudes: Vec<f64>,
    /// Identified patterns: `(k, cluster sizes)`, when enough towers.
    pub patterns: Option<(usize, Vec<usize>)>,
    /// Why patterns are absent (deterministic), when they are.
    pub pattern_note: Option<String>,
    /// Frozen-basis provenance and per-class tower counts, when a
    /// basis was given: `(stage, fingerprint, counts)`.
    pub basis_classes: Option<(String, u64, Vec<usize>)>,
}

impl ServeReport {
    /// Renders the report. Every run over the same acknowledged
    /// stream renders byte-identical text — the chaos tests diff this.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("towerlens serve report\n");
        out.push_str(&format!("source lines   {}\n", self.source_lines));
        out.push_str(&format!("records        {}\n", self.records));
        out.push_str(&format!("malformed      {}\n", self.malformed));
        out.push_str(&format!("duplicates     {}\n", self.duplicates));
        out.push_str(&format!("conflicts      {}\n", self.conflicts));
        out.push_str(&format!("sessions       {}\n", self.sessions));
        out.push_str(&format!("active towers  {}\n", self.active_towers));
        out.push_str(&format!(
            "vector towers  {} (dropped {})\n",
            self.vector_towers, self.dropped_towers
        ));
        out.push_str(&format!(
            "spectral bins  {:?} ({})\n",
            self.bins,
            if self.whole_weeks {
                "week/day/half-day"
            } else {
                "modular"
            }
        ));
        let amps: Vec<String> = self
            .line_amplitudes
            .iter()
            .map(|a| format!("{a:.9e}"))
            .collect();
        out.push_str(&format!("line amps      [{}]\n", amps.join(", ")));
        match (&self.patterns, &self.pattern_note) {
            (Some((k, sizes)), _) => {
                out.push_str(&format!("patterns       k={k} sizes {sizes:?}\n"));
            }
            (None, Some(note)) => out.push_str(&format!("patterns       none ({note})\n")),
            (None, None) => out.push_str("patterns       none\n"),
        }
        if let Some((stage, fp, classes)) = &self.basis_classes {
            out.push_str(&format!(
                "basis          stage={stage} fp={fp:016x} classes {classes:?}\n"
            ));
        }
        out
    }
}

/// Where the kill-plan failpoint (`TOWERLENS_SERVE_KILL`) aborts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KillPoint {
    None,
    /// Abort right after sealing the n-th WAL segment of this
    /// process, before the snapshot (`pre:<n>`).
    AfterSeal(u64),
    /// Abort right after saving the n-th snapshot of this process
    /// (`<n>`).
    AfterSnapshot(u64),
}

fn kill_plan() -> Result<KillPoint, ServeError> {
    let Ok(spec) = std::env::var("TOWERLENS_SERVE_KILL") else {
        return Ok(KillPoint::None);
    };
    let parse = |s: &str| -> Result<u64, ServeError> {
        s.parse::<u64>().map_err(|_| {
            ServeError::Config(format!(
                "TOWERLENS_SERVE_KILL: bad count `{s}` (want `<n>` or `pre:<n>`)"
            ))
        })
    };
    if let Some(n) = spec.strip_prefix("pre:") {
        Ok(KillPoint::AfterSeal(parse(n)?))
    } else {
        Ok(KillPoint::AfterSnapshot(parse(&spec)?))
    }
}

/// The shard-fault failpoint: `TOWERLENS_FAULT_SHARD=<shard|*>:<n>`
/// injects `n` transient apply failures into one shard (or each).
#[derive(Debug, Clone, Copy)]
struct ShardFault {
    shard: Option<usize>,
    budget: u64,
}

fn shard_fault() -> Result<Option<ShardFault>, ServeError> {
    let Ok(spec) = std::env::var("TOWERLENS_FAULT_SHARD") else {
        return Ok(None);
    };
    let bad = || {
        ServeError::Config(format!(
            "TOWERLENS_FAULT_SHARD: bad spec `{spec}` (want `<shard|*>:<n>`)"
        ))
    };
    let (shard, budget) = spec.split_once(':').ok_or_else(bad)?;
    let shard = if shard == "*" {
        None
    } else {
        Some(shard.parse::<usize>().map_err(|_| bad())?)
    };
    let budget = budget.parse::<u64>().map_err(|_| bad())?;
    Ok(Some(ShardFault { shard, budget }))
}

/// Messages into a shard worker.
enum ShardMsg {
    /// Apply one acknowledged record.
    Apply(u64, LogRecord),
    /// Barrier: reply with the shard's current view. Because the
    /// channel is ordered, the view covers exactly the records
    /// dispatched before the barrier.
    Sync(mpsc::Sender<ShardView>),
}

/// A shard's state as of a barrier.
#[derive(Debug, Clone, Default)]
struct ShardView {
    towers: Vec<(u32, Vec<Session>)>,
    duplicates: u64,
    conflicts: u64,
    shed: u64,
    quarantined: bool,
    /// Live nearest-centroid class counts (when a basis is armed).
    online_classes: Vec<u64>,
}

#[allow(clippy::too_many_arguments)]
fn run_shard(
    index: usize,
    rx: mpsc::Receiver<ShardMsg>,
    mut towers: BTreeMap<u32, TowerState>,
    window: TraceWindow,
    gbins: Vec<usize>,
    retry: RetryPolicy,
    breaker: BreakerPolicy,
    mut fault_budget: u64,
    basis: Option<Arc<Basis>>,
) {
    let stage = format!("serve-shard-{index}");
    let mut duplicates = 0u64;
    let mut conflicts = 0u64;
    let mut shed = 0u64;
    let mut consecutive = 0u32;
    let mut quarantined = false;
    for msg in rx {
        match msg {
            ShardMsg::Apply(seq, rec) => {
                if quarantined {
                    shed += 1;
                    SHED_TOTAL.inc();
                    continue;
                }
                let mut applied = None;
                for attempt in 0..=retry.retries {
                    if fault_budget > 0 {
                        fault_budget -= 1;
                        if attempt < retry.retries {
                            SHARD_RESTARTS.inc();
                            std::thread::sleep(retry.delay(&stage, attempt + 1));
                        }
                        continue;
                    }
                    let tower = towers
                        .entry(rec.cell_id)
                        .or_insert_with(|| TowerState::new(&window, &gbins));
                    applied = Some(tower.apply(&rec, seq, &window));
                    break;
                }
                match applied {
                    Some(ApplyOutcome::New) => consecutive = 0,
                    Some(ApplyOutcome::Duplicate) => {
                        duplicates += 1;
                        consecutive = 0;
                    }
                    Some(ApplyOutcome::Conflict) => {
                        conflicts += 1;
                        consecutive = 0;
                    }
                    None => {
                        shed += 1;
                        SHED_TOTAL.inc();
                        consecutive += 1;
                        if consecutive >= breaker.threshold {
                            quarantined = true;
                            SHARDS_QUARANTINED.inc();
                            eprintln!(
                                "serve: shard {index} quarantined after {consecutive} \
                                 consecutive failures (records now shed, daemon continues)"
                            );
                        }
                    }
                }
            }
            ShardMsg::Sync(reply) => {
                let online_classes = basis
                    .as_deref()
                    .map(|b| online_class_counts(&towers, b))
                    .unwrap_or_default();
                let view = ShardView {
                    towers: towers
                        .iter()
                        .map(|(cell, t)| (*cell, t.sessions().to_vec()))
                        .collect(),
                    duplicates,
                    conflicts,
                    shed,
                    quarantined,
                    online_classes,
                };
                if reply.send(view).is_err() {
                    return; // ingest side is gone; shut down
                }
            }
        }
    }
}

/// Live classification from the incremental views: z-score each
/// tower's binned traffic with its running moments and assign the
/// nearest frozen centroid. Zero-variance towers and dimension
/// mismatches are skipped (the drain report surfaces the latter as a
/// hard error).
fn online_class_counts(towers: &BTreeMap<u32, TowerState>, basis: &Basis) -> Vec<u64> {
    let mut counts = vec![0u64; basis.centroids.len()];
    for tower in towers.values() {
        let (mean, std) = tower.zscore_moments();
        let traffic = tower.traffic();
        if std <= 0.0 || traffic.len() != basis.dims() {
            continue;
        }
        let z: Vec<f64> = traffic.iter().map(|v| (v - mean) / std).collect();
        if let Ok(labels) = classify(&[z], basis) {
            counts[labels[0]] += 1;
        }
    }
    counts
}

/// Recovery product: rebuilt per-shard state plus the durable counts.
struct Recovered {
    shard_maps: Vec<BTreeMap<u32, TowerState>>,
    counts: Counts,
    /// `next_seq` already covered by the on-disk snapshot (used to
    /// skip a redundant final snapshot on an already-converged rerun).
    snapshotted_seq: Option<u64>,
}

fn recover(
    config: &ServeConfig,
    store: &CheckpointStore,
    window: &TraceWindow,
    gbins: &[usize],
) -> Result<Recovered, ServeError> {
    let snapshot = store
        .load(SNAPSHOT_STAGE, &SnapshotCodec)?
        .map(|(snap, _cards)| snap);
    let snapshotted_seq = snapshot.as_ref().map(|s| s.next_seq);
    let snapshot = snapshot.unwrap_or_default();

    let mut shard_maps: Vec<BTreeMap<u32, TowerState>> = vec![BTreeMap::new(); config.shards];
    let mut counts = Counts {
        next_seq: snapshot.next_seq,
        records: snapshot.records,
        malformed: snapshot.malformed,
        duplicates: snapshot.duplicates,
        conflicts: snapshot.conflicts,
    };
    for (cell, sessions) in snapshot.towers {
        let shard = cell as usize % config.shards;
        shard_maps[shard].insert(cell, TowerState::from_sessions(sessions, window, gbins));
    }

    // Replay the WAL tail past the snapshot horizon. Replayed records
    // are applied directly — the ledger already acknowledged them, so
    // supervision failpoints do not apply here.
    let outcome = replay(&config.data_dir.join(WAL_DIR))?;
    let mut replayed = 0u64;
    for entry in outcome.entries {
        if entry.seq < counts.next_seq {
            continue; // covered by the snapshot
        }
        if entry.seq != counts.next_seq {
            return Err(ServeError::SequenceGap {
                expected: counts.next_seq,
                found: entry.seq,
                segment: outcome.sealed_segments,
            });
        }
        counts.next_seq += 1;
        replayed += 1;
        match LogRecord::parse_line(&entry.line, entry.seq as usize + 1) {
            Err(_) => counts.malformed += 1,
            Ok(rec) => {
                counts.records += 1;
                let shard = rec.cell_id as usize % config.shards;
                let tower = shard_maps[shard]
                    .entry(rec.cell_id)
                    .or_insert_with(|| TowerState::new(window, gbins));
                match tower.apply(&rec, entry.seq, window) {
                    ApplyOutcome::New => {}
                    ApplyOutcome::Duplicate => counts.duplicates += 1,
                    ApplyOutcome::Conflict => counts.conflicts += 1,
                }
            }
        }
    }
    if snapshotted_seq.is_some() || replayed > 0 || outcome.torn_tails > 0 {
        eprintln!(
            "serve: recovered seq {} (snapshot {}, wal tail {replayed} entries, {} torn)",
            counts.next_seq,
            snapshotted_seq
                .map(|s| s.to_string())
                .unwrap_or_else(|| "none".to_string()),
            outcome.torn_tails
        );
    }
    Ok(Recovered {
        shard_maps,
        counts,
        snapshotted_seq,
    })
}

/// Saves a snapshot with bounded retries over transient I/O failures
/// (the `TOWERLENS_FAULT_IO` failpoint injects these in drills).
fn save_snapshot(
    store: &CheckpointStore,
    snap: &ServeSnapshot,
    retry: &RetryPolicy,
) -> Result<(), ServeError> {
    let mut attempt = 0u32;
    loop {
        match store.save(SNAPSHOT_STAGE, &[], &SnapshotCodec, snap) {
            Ok(()) => return Ok(()),
            Err(CheckpointError::Io { .. }) if attempt < retry.retries => {
                attempt += 1;
                std::thread::sleep(retry.delay("serve-snapshot", attempt));
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// Runs the daemon to end of source and returns the drain report.
/// The caller prints `report.render()` to stdout; everything the
/// daemon itself emits goes to stderr.
///
/// # Errors
/// Any [`ServeError`]; durable state is left consistent (the WAL is
/// never truncated, snapshots are written atomically).
pub fn serve(config: &ServeConfig) -> Result<ServeReport, ServeError> {
    config.validate()?;
    let kill = kill_plan()?;
    let fault = shard_fault()?;
    let publish_kill = PublishKill::from_env().map_err(ServeError::Config)?;
    let mut publisher = match &config.publish {
        Some(dir) => Some(
            Publisher::open(dir, publish_kill)
                .map_err(|e| ServeError::Analysis(format!("artifact publish: {e}")))?,
        ),
        None => None,
    };
    let fingerprint = config.fingerprint();
    let window = config.window();
    let gbins = config.goertzel_bins();
    let basis = match &config.basis {
        Some(path) => Some(Arc::new(load_basis(path)?)),
        None => None,
    };

    let store = CheckpointStore::open(config.data_dir.join(SNAP_DIR), config.fingerprint())?;
    let recovered = recover(config, &store, &window, &gbins)?;
    let mut counts = recovered.counts;
    let resume_from = counts.next_seq;

    // Spawn the shard workers over bounded queues.
    let retry = RetryPolicy::new(config.retries);
    let breaker = BreakerPolicy::default();
    let mut senders = Vec::with_capacity(config.shards);
    let mut handles = Vec::with_capacity(config.shards);
    for (i, map) in recovered.shard_maps.into_iter().enumerate() {
        let (tx, rx) = mpsc::sync_channel::<ShardMsg>(config.queue_cap);
        let budget = match fault {
            Some(f) if f.shard.is_none() || f.shard == Some(i) => f.budget,
            _ => 0,
        };
        let (w, g, r, b) = (window, gbins.clone(), retry.clone(), basis.clone());
        let br = breaker.clone();
        handles.push(std::thread::spawn(move || {
            run_shard(i, rx, map, w, g, r, br, budget, b)
        }));
        senders.push(tx);
    }

    let barrier = |senders: &[mpsc::SyncSender<ShardMsg>]| -> Result<Vec<ShardView>, ServeError> {
        let mut replies = Vec::with_capacity(senders.len());
        for (i, s) in senders.iter().enumerate() {
            let (tx, rx) = mpsc::channel();
            s.send(ShardMsg::Sync(tx))
                .map_err(|_| ServeError::Analysis(format!("shard {i} worker is down")))?;
            replies.push(rx);
        }
        let mut views = Vec::with_capacity(senders.len());
        for (i, rx) in replies.into_iter().enumerate() {
            views.push(rx.recv().map_err(|_| {
                ServeError::Analysis(format!("shard {i} worker died before the barrier"))
            })?);
        }
        Ok(views)
    };

    let assemble = |views: &[ShardView], counts: &Counts| -> ServeSnapshot {
        let mut towers: BTreeMap<u32, Vec<Session>> = BTreeMap::new();
        for view in views {
            for (cell, sessions) in &view.towers {
                towers.insert(*cell, sessions.clone());
            }
        }
        ServeSnapshot {
            next_seq: counts.next_seq,
            records: counts.records,
            malformed: counts.malformed,
            duplicates: counts.duplicates + views.iter().map(|v| v.duplicates).sum::<u64>(),
            conflicts: counts.conflicts + views.iter().map(|v| v.conflicts).sum::<u64>(),
            towers: towers.into_iter().collect(),
        }
    };

    // Stream the source, skipping the lines already acknowledged.
    let mut wal = WalWriter::open(&config.data_dir.join(WAL_DIR))?;
    let file = std::fs::File::open(&config.source).map_err(|e| io_err(&config.source, e))?;
    let reader = std::io::BufReader::new(file);
    let mut skipped = 0u64;
    let mut unflushed = 0u64;
    let mut seals = 0u64;
    let mut snaps = 0u64;
    for line in reader.lines() {
        let line = line.map_err(|e| io_err(&config.source, e))?;
        if line.is_empty() {
            continue;
        }
        if skipped < resume_from {
            skipped += 1;
            continue;
        }
        let seq = counts.next_seq;
        wal.append(seq, &line)?;
        counts.next_seq += 1;
        unflushed += 1;
        if unflushed >= config.flush_every {
            wal.sync()?;
            unflushed = 0;
        }
        match LogRecord::parse_line(&line, seq as usize + 1) {
            Err(_) => {
                counts.malformed += 1;
                MALFORMED.inc();
            }
            Ok(rec) => {
                counts.records += 1;
                RECORDS_INGESTED.inc();
                let shard = rec.cell_id as usize % config.shards;
                match senders[shard].try_send(ShardMsg::Apply(seq, rec)) {
                    Ok(()) => {}
                    Err(mpsc::TrySendError::Full(msg)) => {
                        BACKPRESSURE_WAITS.inc();
                        senders[shard].send(msg).map_err(|_| {
                            ServeError::Analysis(format!("shard {shard} worker is down"))
                        })?;
                    }
                    Err(mpsc::TrySendError::Disconnected(_)) => {
                        return Err(ServeError::Analysis(format!(
                            "shard {shard} worker is down"
                        )));
                    }
                }
            }
        }
        if config.progress_every > 0 && counts.next_seq.is_multiple_of(config.progress_every) {
            eprintln!(
                "serve: seq {} ({} records, {} malformed)",
                counts.next_seq, counts.records, counts.malformed
            );
        }
        if wal.entries_in_segment() >= config.segment_records {
            wal.sync()?;
            unflushed = 0;
            if wal.rotate()? {
                WAL_SEGMENTS.inc();
                seals += 1;
                if kill == KillPoint::AfterSeal(seals) {
                    eprintln!("serve: TOWERLENS_SERVE_KILL pre:{seals} — aborting before snapshot");
                    std::process::abort();
                }
            }
            let views = barrier(&senders)?;
            let snap = assemble(&views, &counts);
            save_snapshot(&store, &snap, &retry)?;
            SNAPSHOTS.inc();
            snaps += 1;
            publish_generation(publisher.as_mut(), &snap, &window, fingerprint)?;
            progress_line(&snap, &views);
            if kill == KillPoint::AfterSnapshot(snaps) {
                eprintln!("serve: TOWERLENS_SERVE_KILL {snaps} — aborting after snapshot");
                std::process::abort();
            }
        }
    }

    // End of stream: seal the tail, snapshot if anything advanced,
    // and drain.
    wal.sync()?;
    if wal.rotate()? {
        WAL_SEGMENTS.inc();
        seals += 1;
        if kill == KillPoint::AfterSeal(seals) {
            eprintln!("serve: TOWERLENS_SERVE_KILL pre:{seals} — aborting before snapshot");
            std::process::abort();
        }
    }
    let views = barrier(&senders)?;
    let snap = assemble(&views, &counts);
    if recovered.snapshotted_seq != Some(counts.next_seq) {
        save_snapshot(&store, &snap, &retry)?;
        SNAPSHOTS.inc();
        snaps += 1;
        if kill == KillPoint::AfterSnapshot(snaps) {
            eprintln!("serve: TOWERLENS_SERVE_KILL {snaps} — aborting after snapshot");
            std::process::abort();
        }
    }
    // Publish unconditionally at end of stream: even when a resumed
    // run had nothing new to snapshot, the generation store must
    // converge to pointing at the full-stream artifact (the publish
    // itself is an idempotent no-op once it does).
    publish_generation(publisher.as_mut(), &snap, &window, fingerprint)?;
    progress_line(&snap, &views);
    drop(senders);
    for h in handles {
        let _ = h.join();
    }

    drain(&snap, &window, basis.as_deref())
}

fn progress_line(snap: &ServeSnapshot, views: &[ShardView]) {
    let shed: u64 = views.iter().map(|v| v.shed).sum();
    let quarantined = views.iter().filter(|v| v.quarantined).count();
    let mut msg = format!(
        "serve: snapshot at seq {} ({} sessions, {} towers, {} shed, {} quarantined)",
        snap.next_seq,
        snap.towers.iter().map(|(_, s)| s.len()).sum::<usize>(),
        snap.towers.len(),
        shed,
        quarantined
    );
    if views.iter().any(|v| !v.online_classes.is_empty()) {
        let mut classes: Vec<u64> = Vec::new();
        for view in views {
            for (i, c) in view.online_classes.iter().enumerate() {
                if classes.len() <= i {
                    classes.resize(i + 1, 0);
                }
                classes[i] += c;
            }
        }
        msg.push_str(&format!(" online classes {classes:?}"));
    }
    eprintln!("{msg}");
}

/// Rebuilds the batch pipeline's input from the durable state and runs
/// the batch analysis. Sorting sessions by `first_seq` reconstructs
/// the batch cleaner's first-seen output order exactly, so this is the
/// same record list `clean_records` would produce over the full
/// acknowledged stream — which is what makes serve-vs-batch
/// byte-identity hold by construction rather than by tolerance.
fn drain(
    snap: &ServeSnapshot,
    window: &TraceWindow,
    basis: Option<&Basis>,
) -> Result<ServeReport, ServeError> {
    let records = state_records(snap);
    let counts = Counts {
        next_seq: snap.next_seq,
        records: snap.records,
        malformed: snap.malformed,
        duplicates: snap.duplicates,
        conflicts: snap.conflicts,
    };
    analyze(&records, &counts, window, basis)
}

/// Rebuilds the cleaned record list from durable state: sessions
/// sorted by `first_seq` reconstruct the batch cleaner's first-seen
/// output order exactly. Shared by [`drain`] and the generation
/// publisher so both analyse the same stream.
fn state_records(snap: &ServeSnapshot) -> Vec<LogRecord> {
    let mut sessions: Vec<(u32, &Session)> = snap
        .towers
        .iter()
        .flat_map(|(cell, s)| s.iter().map(move |s| (*cell, s)))
        .collect();
    sessions.sort_by_key(|(_, s)| s.first_seq);
    sessions
        .iter()
        .map(|(cell, s)| LogRecord {
            user_id: s.user_id,
            start_s: s.start_s,
            end_s: s.end_s,
            cell_id: *cell,
            address: String::new(),
            bytes: s.bytes,
        })
        .collect()
}

/// Assembles the versioned query artifact for the current durable
/// state: the same record rebuild as [`drain`], a one-thread
/// vectorize (bit-reproducible), spectral feature extraction, and
/// pattern identification, fed through the study's shared
/// [`snapshot_from_parts`] assembly point. `Ok(None)` when the state
/// holds too little data to identify patterns — a young stream has
/// nothing to publish yet, which is not an error.
fn query_snapshot_of(
    snap: &ServeSnapshot,
    window: &TraceWindow,
    fingerprint: u64,
) -> Result<Option<towerlens_artifact::Snapshot>, ServeError> {
    let records = state_records(snap);
    if records.is_empty() {
        return Ok(None);
    }
    let n_towers = records.iter().map(|r| r.cell_id).max().unwrap_or(0) as usize + 1;
    let vect = Vectorizer::new(*window, 1)
        .run_with(&records, n_towers, &VectorizerOptions::default())
        .map_err(|e| ServeError::Analysis(e.to_string()))?;
    let vectors = &vect.normalized.vectors;
    if vectors.is_empty() {
        return Ok(None);
    }
    let patterns = match PatternIdentifier::default().identify_in(vectors, Some(window)) {
        Ok(p) => p,
        Err(CoreError::NotEnoughData { .. }) => return Ok(None),
        Err(e) => return Err(ServeError::Analysis(e.to_string())),
    };
    let features =
        features_of_goertzel(vectors, window).map_err(|e| ServeError::Analysis(e.to_string()))?;
    snapshot_from_parts(
        window,
        &vect.normalized.kept_ids,
        vectors,
        &patterns,
        None,
        &features,
        None,
        &[],
        fingerprint,
        FeatureSpace::Auto,
    )
    .map(Some)
    .map_err(|e| ServeError::Analysis(e.to_string()))
}

/// Publishes the current state to the generation store, when one is
/// configured. Counts `serve.generations_published` only for real
/// publishes — [`Publisher::publish`] is an idempotent no-op when
/// `CURRENT` already names these exact bytes, which is what lets a
/// crashed-and-restarted publisher converge.
fn publish_generation(
    publisher: Option<&mut Publisher>,
    snap: &ServeSnapshot,
    window: &TraceWindow,
    fingerprint: u64,
) -> Result<(), ServeError> {
    let Some(publisher) = publisher else {
        return Ok(());
    };
    match query_snapshot_of(snap, window, fingerprint)? {
        Some(artifact) => {
            let before = publisher.published();
            let generation = publisher
                .publish(&artifact)
                .map_err(|e| ServeError::Analysis(format!("artifact publish: {e}")))?;
            if publisher.published() > before {
                GENERATIONS_PUBLISHED.inc();
                eprintln!(
                    "serve: published generation {generation} ({} towers) to {}",
                    artifact.n_towers(),
                    publisher.dir().display()
                );
            }
        }
        None => eprintln!("serve: nothing to publish yet (not enough data)"),
    }
    Ok(())
}

/// The batch analysis over cleaned records — shared verbatim by the
/// daemon's drain and [`batch_reference`], with identical inputs by
/// construction.
fn analyze(
    records: &[LogRecord],
    counts: &Counts,
    window: &TraceWindow,
    basis: Option<&Basis>,
) -> Result<ServeReport, ServeError> {
    let whole_weeks = principal_bins(window).is_some();
    let bins = match principal_bins(window) {
        Some(b) => b.to_vec(),
        None => [1usize, 7, 14]
            .iter()
            .map(|&b| b % window.n_bins.max(1))
            .collect(),
    };
    let active_towers = {
        let mut cells: Vec<u32> = records.iter().map(|r| r.cell_id).collect();
        cells.sort_unstable();
        cells.dedup();
        cells.len()
    };
    let mut report = ServeReport {
        source_lines: counts.next_seq,
        records: counts.records,
        malformed: counts.malformed,
        duplicates: counts.duplicates,
        conflicts: counts.conflicts,
        sessions: records.len() as u64,
        active_towers,
        vector_towers: 0,
        dropped_towers: 0,
        bins,
        whole_weeks,
        line_amplitudes: Vec::new(),
        patterns: None,
        pattern_note: None,
        basis_classes: None,
    };
    if records.is_empty() {
        report.pattern_note = Some("no records".to_string());
        if let Some(b) = basis {
            report.basis_classes =
                Some((b.stage.clone(), b.fingerprint, vec![0; b.centroids.len()]));
        }
        return Ok(report);
    }

    let n_towers = records.iter().map(|r| r.cell_id).max().unwrap_or(0) as usize + 1;
    // One worker thread: the drain must be bit-reproducible across
    // machines, and it runs once per stream.
    let vect = Vectorizer::new(*window, 1)
        .run_with(records, n_towers, &VectorizerOptions::default())
        .map_err(|e| ServeError::Analysis(e.to_string()))?;
    report.vector_towers = vect.normalized.vectors.len();
    report.dropped_towers = vect.normalized.dropped.len();

    // Mean amplitude of each principal line over kept towers' raw
    // traffic (batch Goertzel — the live sliding bank's ground truth).
    if !vect.normalized.kept_ids.is_empty() {
        let mut sums = vec![0.0f64; report.bins.len()];
        for &id in &vect.normalized.kept_ids {
            for (i, &bin) in report.bins.iter().enumerate() {
                let c = goertzel(&vect.raw[id], bin)
                    .map_err(|e| ServeError::Analysis(e.to_string()))?;
                sums[i] += c.abs();
            }
        }
        let n = vect.normalized.kept_ids.len() as f64;
        report.line_amplitudes = sums.into_iter().map(|s| s / n).collect();
    }

    match PatternIdentifier::default().identify_in(&vect.normalized.vectors, Some(window)) {
        Ok(p) => report.patterns = Some((p.k, p.clustering.sizes())),
        Err(CoreError::NotEnoughData { what, needed, got }) => {
            report.pattern_note = Some(format!(
                "not enough data: {what} (need {needed}, got {got})"
            ));
        }
        Err(e) => report.pattern_note = Some(e.to_string()),
    }

    if let Some(b) = basis {
        let labels = classify(&vect.normalized.vectors, b)?;
        let mut classes = vec![0usize; b.centroids.len()];
        for l in labels {
            classes[l] += 1;
        }
        report.basis_classes = Some((b.stage.clone(), b.fingerprint, classes));
    }
    Ok(report)
}

/// The equivalence oracle: parses the *entire* source as one batch,
/// cleans it with the batch cleaner, and runs the same analysis the
/// daemon's drain runs. A recorded stream replayed through `serve` —
/// with any kill/restart schedule — must render byte-identically to
/// this.
///
/// # Errors
/// Any [`ServeError`].
pub fn batch_reference(config: &ServeConfig) -> Result<ServeReport, ServeError> {
    config.validate()?;
    let window = config.window();
    let basis = match &config.basis {
        Some(path) => Some(load_basis(path)?),
        None => None,
    };
    let text = std::fs::read_to_string(&config.source).map_err(|e| io_err(&config.source, e))?;
    let mut counts = Counts::default();
    let mut records = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        let seq = counts.next_seq;
        counts.next_seq += 1;
        match LogRecord::parse_line(line, seq as usize + 1) {
            Err(_) => counts.malformed += 1,
            Ok(rec) => {
                counts.records += 1;
                records.push(rec);
            }
        }
    }
    let (kept, clean) = clean_records(&records);
    counts.duplicates = clean.duplicates_removed as u64;
    counts.conflicts = clean.conflicts_resolved as u64;
    analyze(&kept, &counts, &window, basis.as_ref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_plan_parses_both_forms() {
        // Parsed directly rather than via the env var to keep tests
        // process-parallel safe.
        assert_eq!(kill_plan().unwrap(), KillPoint::None);
    }

    #[test]
    fn config_validation_rejects_zeros() {
        for cfg in [
            ServeConfig {
                days: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                shards: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                segment_records: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                queue_cap: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                flush_every: 0,
                ..ServeConfig::default()
            },
        ] {
            assert!(matches!(serve(&cfg), Err(ServeError::Config(_))));
        }
    }

    #[test]
    fn fingerprint_covers_the_window_only() {
        let a = ServeConfig::default();
        let b = ServeConfig {
            shards: 9,
            segment_records: 1,
            ..ServeConfig::default()
        };
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = ServeConfig {
            days: 14,
            ..ServeConfig::default()
        };
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn report_renders_deterministically() {
        let report = ServeReport {
            source_lines: 10,
            records: 9,
            malformed: 1,
            duplicates: 2,
            conflicts: 1,
            sessions: 6,
            active_towers: 3,
            vector_towers: 3,
            dropped_towers: 0,
            bins: vec![1, 7, 14],
            whole_weeks: true,
            line_amplitudes: vec![1.5, 0.25, 0.125],
            patterns: None,
            pattern_note: Some("not enough data".to_string()),
            basis_classes: Some(("cluster".to_string(), 0xabc, vec![2, 1])),
        };
        let text = report.render();
        assert_eq!(text, report.render());
        assert!(text.contains("line amps      [1.500000000e0, 2.500000000e-1, 1.250000000e-1]"));
        assert!(text.contains("patterns       none (not enough data)"));
        assert!(text.contains("fp=0000000000000abc"));
    }
}
