//! A torn tail must not outlive its segment being the last one.
//!
//! Replay tolerates a crash-interrupted final line only in the *last*
//! segment — the one write a crash can legitimately interrupt. When a
//! restarted writer opens a newer segment, that tolerance would
//! expire, so [`WalWriter::open`] repairs the tear first: the torn
//! line was never acknowledged, truncating it loses nothing, and
//! every later replay sees a clean directory.

use towerlens_serve::wal::segment_path;
use towerlens_serve::{replay, WalWriter};

#[test]
fn torn_tail_is_repaired_before_a_new_segment_opens() {
    let dir = std::env::temp_dir().join(format!("towerlens-review-torn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Run 1: two acked entries, then a crash tears the third line.
    let mut w = WalWriter::open(&dir).unwrap();
    w.append(0, "a").unwrap();
    w.append(1, "b").unwrap();
    w.sync().unwrap();
    drop(w);
    let path = segment_path(&dir, 0);
    let mut text = std::fs::read_to_string(&path).unwrap();
    text.push_str("r 2 00ff"); // interrupted mid-write
    std::fs::write(&path, text).unwrap();

    // Restart 1: replay tolerates the torn tail of the last segment...
    let out = replay(&dir).unwrap();
    assert_eq!(out.next_seq, 2);
    assert_eq!(out.torn_tails, 1);

    // ...and opening the writer repairs it before segment 1 starts,
    // so the restarted process re-acks the lost line cleanly.
    let mut w2 = WalWriter::open(&dir).unwrap();
    assert_eq!(w2.segment_index(), 1);
    assert!(
        !std::fs::read_to_string(&path).unwrap().contains("r 2 00ff"),
        "torn line survived the writer reopening"
    );
    w2.append(2, "c").unwrap();
    w2.sync().unwrap();
    drop(w2);

    // Restart 2: segment 0 is no longer last, and no longer torn.
    let second = replay(&dir).unwrap();
    assert_eq!(second.next_seq, 3);
    assert_eq!(second.torn_tails, 0);
    assert_eq!(
        second
            .entries
            .iter()
            .map(|e| e.line.as_str())
            .collect::<Vec<_>>(),
        ["a", "b", "c"]
    );
    let _ = std::fs::remove_dir_all(&dir);
}
