//! Review scratch test: torn tail followed by a new segment.

use towerlens_serve::wal::segment_path;
use towerlens_serve::{replay, WalWriter};

#[test]
fn torn_tail_then_new_segment_breaks_replay() {
    let dir = std::env::temp_dir().join("towerlens-review-torn");
    let _ = std::fs::remove_dir_all(&dir);

    // Run 1: two acked entries, then a crash tears the third line.
    let mut w = WalWriter::open(&dir).unwrap();
    w.append(0, "a").unwrap();
    w.append(1, "b").unwrap();
    w.sync().unwrap();
    drop(w);
    let path = segment_path(&dir, 0);
    let mut text = std::fs::read_to_string(&path).unwrap();
    text.push_str("r 2 00ff"); // interrupted mid-write
    std::fs::write(&path, text).unwrap();

    // Restart 1: replay tolerates the torn tail...
    let out = replay(&dir).unwrap();
    assert_eq!(out.next_seq, 2);
    assert_eq!(out.torn_tails, 1);

    // ...and the restarted process re-acks the lost line into a new segment.
    let mut w2 = WalWriter::open(&dir).unwrap();
    assert_eq!(w2.segment_index(), 1);
    w2.append(2, "c").unwrap();
    w2.sync().unwrap();
    drop(w2);

    // Restart 2: segment 0 is no longer last, so its torn line is fatal.
    let second = replay(&dir);
    eprintln!("second replay: {second:?}");
    assert!(second.is_ok(), "second restart fails: {second:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
