//! End-to-end determinism of the streaming daemon.
//!
//! The central claim: `serve` over a recorded stream renders the same
//! stdout report as the batch pipeline over the same lines — exactly,
//! byte for byte — and restarting mid-stream changes nothing.

use std::path::PathBuf;

use towerlens_serve::{batch_reference, fsck_wal, serve, ServeConfig, WAL_DIR};
use towerlens_trace::record::LogRecord;
use towerlens_trace::time::TraceWindow;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("towerlens-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A deterministic synthetic stream: a small splitmix-style generator
/// drives tower/user/bytes choices; a sprinkle of duplicates,
/// conflicts, and malformed lines exercises the cleaner.
fn synth_lines(n: usize, towers: u64, seed: u64) -> Vec<String> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let window = TraceWindow::days(7);
    let span = window.bin_secs * window.n_bins as u64;
    let mut lines = Vec::with_capacity(n);
    for i in 0..n {
        let r = next();
        if i % 23 == 21 {
            lines.push(format!("garbage line {i}"));
            continue;
        }
        if i % 17 == 13 && !lines.is_empty() {
            // Byte-identical duplicate of an earlier line.
            let j = (r as usize) % lines.len();
            lines.push(lines[j].clone());
            continue;
        }
        let start = window.start_s + r % (span - 3600);
        let rec = LogRecord {
            user_id: 1 + r % 97,
            start_s: start,
            end_s: start + 300 + (r >> 13) % 3300,
            cell_id: (r % towers) as u32,
            address: format!("{} Example Way", r % 500),
            bytes: 1_000 + (r >> 7) % 1_000_000,
        };
        lines.push(rec.to_line());
        if i % 29 == 27 {
            // Conflict: same session key, different byte count.
            let mut bumped = rec;
            bumped.bytes += 1 + r % 1000;
            lines.push(bumped.to_line());
        }
    }
    lines
}

fn write_source(dir: &std::path::Path, lines: &[String]) -> PathBuf {
    let path = dir.join("source.log");
    std::fs::write(&path, lines.join("\n") + "\n").unwrap();
    path
}

fn config(source: PathBuf, data_dir: PathBuf) -> ServeConfig {
    ServeConfig {
        source,
        data_dir,
        days: 7,
        shards: 3,
        segment_records: 100,
        queue_cap: 16,
        retries: 2,
        basis: None,
        flush_every: 16,
        progress_every: 0,
        publish: None,
    }
}

#[test]
fn serve_matches_batch_byte_for_byte() {
    let dir = temp_dir("vs-batch");
    let lines = synth_lines(600, 24, 7);
    let source = write_source(&dir, &lines);
    let cfg = config(source, dir.join("data"));

    let streamed = serve(&cfg).unwrap().render();
    let batch = batch_reference(&cfg).unwrap().render();
    assert_eq!(streamed, batch);

    // The report accounts for real work.
    assert!(streamed.contains("patterns       k="), "report: {streamed}");
    assert!(streamed.contains(&format!("source lines   {}", lines.len())));

    // Every WAL segment on disk is sealed and healthy.
    let rows = fsck_wal(&cfg.data_dir.join(WAL_DIR)).unwrap();
    assert!(!rows.is_empty());
    for row in &rows {
        assert!(row.error.is_none(), "{}: {:?}", row.file, row.error);
        assert!(row.sealed, "{} unsealed", row.file);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rerun_over_drained_stream_is_idempotent() {
    let dir = temp_dir("idempotent");
    let lines = synth_lines(350, 12, 11);
    let source = write_source(&dir, &lines);
    let cfg = config(source, dir.join("data"));

    let first = serve(&cfg).unwrap().render();
    // Everything is already acknowledged and snapshotted: the second
    // run ingests nothing and reports identically.
    let second = serve(&cfg).unwrap().render();
    assert_eq!(first, second);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_mid_stream_resumes_without_loss_or_drift() {
    let dir = temp_dir("resume");
    let lines = synth_lines(500, 18, 3);
    let half: Vec<String> = lines[..250].to_vec();
    let half_source = write_source(&dir, &half);
    let data_dir = dir.join("data");

    // First run sees only half the stream and drains.
    let cfg_half = config(half_source, data_dir.clone());
    serve(&cfg_half).unwrap();

    // The source then grows to the full stream; a restarted daemon
    // must skip the acknowledged half and converge to the same report
    // as one uninterrupted run over everything.
    let full_source = write_source(&dir, &lines);
    let cfg_full = config(full_source, data_dir);
    let resumed = serve(&cfg_full).unwrap().render();

    let fresh_dir = temp_dir("resume-fresh");
    let fresh_cfg = config(write_source(&fresh_dir, &lines), fresh_dir.join("data"));
    let uninterrupted = serve(&fresh_cfg).unwrap().render();

    assert_eq!(resumed, uninterrupted);
    assert_eq!(resumed, batch_reference(&fresh_cfg).unwrap().render());
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&fresh_dir);
}

#[test]
fn duplicates_conflicts_and_malformed_lines_are_accounted() {
    let dir = temp_dir("accounting");
    let lines = synth_lines(300, 8, 19);
    let source = write_source(&dir, &lines);
    let cfg = config(source, dir.join("data"));

    let report = serve(&cfg).unwrap();
    assert!(report.malformed > 0, "synth stream should contain garbage");
    assert!(report.duplicates > 0, "synth stream should contain dups");
    assert!(
        report.conflicts > 0,
        "synth stream should contain conflicts"
    );
    assert_eq!(
        report.records,
        report.sessions + report.duplicates + report.conflicts
    );
    assert_eq!(report.source_lines, report.records + report.malformed);
    assert_eq!(report.render(), batch_reference(&cfg).unwrap().render());
    let _ = std::fs::remove_dir_all(&dir);
}
