//! Frequency-domain representation (§5.1–5.2).
//!
//! The paper's observation: the DFT of any tower's four-week traffic
//! vector is dominated by three components — `k = weeks` (one week),
//! `k = 7·weeks` (one day), `k = 14·weeks` (half a day); with the
//! paper's 4-week window these are 4, 28 and 56. Keeping
//! `{0} ∪ {±k}` loses <6% of signal energy, and the per-component
//! amplitude/phase pairs form the feature space in which the five
//! patterns separate, towers fill a polygon, and the four "most
//! representative" towers span everything else.

use towerlens_cluster::dendrogram::Clustering;
use towerlens_dsp::circular::{circular_mean, circular_stddev};
use towerlens_dsp::fft::FftPlan;
use towerlens_dsp::spectrum::{amplitude_variance_across, Spectrum};
use towerlens_dsp::stats::{mean, stddev};
use towerlens_trace::time::TraceWindow;

use crate::error::CoreError;

/// The three principal frequency bins of a window: `(week, day,
/// half-day)`.
///
/// # Errors
/// [`CoreError::NotEnoughData`] unless the window spans at least one
/// whole week (the weekly line needs a whole number of weeks to sit
/// on an integer bin).
pub fn principal_bins(window: &TraceWindow) -> Result<[usize; 3], CoreError> {
    // The bin arithmetic lives in `towerlens_pipeline::feature`, where
    // the spectral feature-space projection uses it too; this wrapper
    // only restates "no whole week" as a core error.
    towerlens_pipeline::principal_bins(window).ok_or(CoreError::NotEnoughData {
        what: "whole weeks in window",
        needed: 1,
        got: 0,
    })
}

/// Amplitude/phase of the three principal components for one tower —
/// the paper's `(A₄, P₄, A₂₈, P₂₈, A₅₆, P₅₆)`. Amplitudes are
/// normalised by `N` so they are comparable across window lengths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TowerFeatures {
    /// Amplitude at the weekly component.
    pub amp_week: f64,
    /// Phase at the weekly component.
    pub phase_week: f64,
    /// Amplitude at the daily component.
    pub amp_day: f64,
    /// Phase at the daily component.
    pub phase_day: f64,
    /// Amplitude at the half-day component.
    pub amp_half: f64,
    /// Phase at the half-day component.
    pub phase_half: f64,
}

impl TowerFeatures {
    /// The 3-feature vector `(A_day, P_day, A_half)` the paper uses
    /// for the polygon and the convex decomposition (§5.3, Fig 17).
    pub fn f3(&self) -> [f64; 3] {
        [self.amp_day, self.phase_day, self.amp_half]
    }

    /// All six features as a vector.
    pub fn f6(&self) -> [f64; 6] {
        [
            self.amp_week,
            self.phase_week,
            self.amp_day,
            self.phase_day,
            self.amp_half,
            self.phase_half,
        ]
    }
}

/// Computes spectra for a set of equal-length vectors with a shared
/// FFT plan.
///
/// # Errors
/// Propagates per-vector spectrum failures.
pub fn spectra_of(vectors: &[Vec<f64>]) -> Result<Vec<Spectrum>, CoreError> {
    let n = vectors.first().map(|v| v.len()).unwrap_or(0);
    let plan = FftPlan::new(n);
    vectors
        .iter()
        .map(|v| Spectrum::of_with_plan(v, &plan).map_err(CoreError::from))
        .collect()
}

/// Extracts the principal-component features of every tower.
///
/// # Errors
/// As for [`spectra_of`] and [`principal_bins`].
pub fn features_of(
    vectors: &[Vec<f64>],
    window: &TraceWindow,
) -> Result<Vec<TowerFeatures>, CoreError> {
    let [kw, kd, kh] = principal_bins(window)?;
    let spectra = spectra_of(vectors)?;
    spectra
        .iter()
        .map(|s| {
            let n = s.len() as f64;
            Ok(TowerFeatures {
                amp_week: s.amplitude(kw)? / n,
                phase_week: s.phase(kw)?,
                amp_day: s.amplitude(kd)? / n,
                phase_day: s.phase(kd)?,
                amp_half: s.amplitude(kh)? / n,
                phase_half: s.phase(kh)?,
            })
        })
        .collect()
}

/// Per-cluster mean/σ of amplitude, and circular mean/σ of phase, for
/// one principal component (one panel of Fig 16).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterFeatureStats {
    /// Mean amplitude.
    pub amp_mean: f64,
    /// Amplitude standard deviation.
    pub amp_std: f64,
    /// Circular mean phase (`None` if phases are uniformly spread).
    pub phase_mean: Option<f64>,
    /// Circular phase standard deviation.
    pub phase_std: Option<f64>,
}

/// Computes Fig 16: for each cluster and each of the three
/// components, amplitude and phase statistics.
///
/// Returns `stats[cluster][component]` with components ordered
/// (week, day, half-day).
pub fn cluster_feature_stats(
    features: &[TowerFeatures],
    clustering: &Clustering,
) -> Result<Vec<[ClusterFeatureStats; 3]>, CoreError> {
    if features.len() != clustering.labels.len() {
        return Err(CoreError::NotEnoughData {
            what: "features matching labels",
            needed: clustering.labels.len(),
            got: features.len(),
        });
    }
    let mut out = Vec::with_capacity(clustering.k);
    for c in 0..clustering.k {
        let members: Vec<&TowerFeatures> = features
            .iter()
            .zip(&clustering.labels)
            .filter(|(_, &l)| l == c)
            .map(|(f, _)| f)
            .collect();
        let comp = |amp: fn(&TowerFeatures) -> f64,
                    phase: fn(&TowerFeatures) -> f64|
         -> ClusterFeatureStats {
            let amps: Vec<f64> = members.iter().map(|f| amp(f)).collect();
            let phases: Vec<f64> = members.iter().map(|f| phase(f)).collect();
            ClusterFeatureStats {
                amp_mean: mean(&amps).unwrap_or(0.0),
                amp_std: stddev(&amps).unwrap_or(0.0),
                phase_mean: circular_mean(&phases),
                phase_std: circular_stddev(&phases),
            }
        };
        out.push([
            comp(|f| f.amp_week, |f| f.phase_week),
            comp(|f| f.amp_day, |f| f.phase_day),
            comp(|f| f.amp_half, |f| f.phase_half),
        ]);
    }
    Ok(out)
}

/// Fig 13: per-bin variance of normalised DFT amplitude across
/// towers.
///
/// # Errors
/// As for the underlying spectra.
pub fn amplitude_variance(vectors: &[Vec<f64>]) -> Result<Vec<f64>, CoreError> {
    let spectra = spectra_of(vectors)?;
    amplitude_variance_across(&spectra).map_err(CoreError::from)
}

/// Fig 12: sparse-reconstruction summary of a series.
#[derive(Debug, Clone)]
pub struct ReconstructionSummary {
    /// The three principal bins used (plus DC, implicitly).
    pub bins: [usize; 3],
    /// The three dominant bins actually found in the spectrum
    /// (should equal `bins` when the paper's claim holds).
    pub dominant: Vec<usize>,
    /// Reconstructed time series from `{0} ∪ bins` (and mirrors).
    pub reconstructed: Vec<f64>,
    /// Fraction of energy lost (paper: < 6%).
    pub lost_energy: f64,
}

/// Reconstructs a series from its three principal components + DC and
/// reports the energy loss.
///
/// # Errors
/// As for [`principal_bins`] and the spectrum computation.
pub fn reconstruct_principal(
    series: &[f64],
    window: &TraceWindow,
) -> Result<ReconstructionSummary, CoreError> {
    let bins = principal_bins(window)?;
    let spectrum = Spectrum::of(series)?;
    let keep = [0, bins[0], bins[1], bins[2]];
    let reconstructed = spectrum.reconstruct_from_bins(&keep)?;
    let lost_energy = spectrum.lost_energy_fraction(&keep)?;
    let mut dominant = spectrum.dominant_bins(3);
    dominant.sort_unstable();
    Ok(ReconstructionSummary {
        bins,
        dominant,
        reconstructed,
        lost_energy,
    })
}

/// The §5.2 representative-tower search: for each of the four pure
/// clusters, the member that is farthest (in `f3` feature space) from
/// every tower of the other clusters, among members that are not
/// noise (density ≥ median member density).
///
/// `pure_clusters` lists the cluster index of each pure pattern; the
/// return value is the *vector index* (into `features`) of each
/// pattern's representative, in the same order.
///
/// # Errors
/// [`CoreError::NotEnoughData`] if a listed cluster has no members.
pub fn representative_towers(
    features: &[TowerFeatures],
    clustering: &Clustering,
    pure_clusters: &[usize],
) -> Result<Vec<usize>, CoreError> {
    if features.len() != clustering.labels.len() {
        return Err(CoreError::NotEnoughData {
            what: "features matching labels",
            needed: clustering.labels.len(),
            got: features.len(),
        });
    }
    let pts: Vec<[f64; 3]> = features.iter().map(|f| f.f3()).collect();
    let d3 = |a: &[f64; 3], b: &[f64; 3]| -> f64 {
        let dx = a[0] - b[0];
        let dy = a[1] - b[1];
        let dz = a[2] - b[2];
        (dx * dx + dy * dy + dz * dz).sqrt()
    };
    // Density radius: a fraction of the global feature spread.
    let spread = {
        let mut lo = [f64::INFINITY; 3];
        let mut hi = [f64::NEG_INFINITY; 3];
        for p in &pts {
            for i in 0..3 {
                lo[i] = lo[i].min(p[i]);
                hi[i] = hi[i].max(p[i]);
            }
        }
        ((hi[0] - lo[0]).powi(2) + (hi[1] - lo[1]).powi(2) + (hi[2] - lo[2]).powi(2)).sqrt()
    };
    let radius = (spread * 0.1).max(1e-9);

    let mut out = Vec::with_capacity(pure_clusters.len());
    for &c in pure_clusters {
        let members: Vec<usize> = clustering.members(c);
        if members.is_empty() {
            return Err(CoreError::NotEnoughData {
                what: "cluster members",
                needed: 1,
                got: 0,
            });
        }
        // Density of each member (towers of any cluster within the
        // radius).
        let density: Vec<usize> = members
            .iter()
            .map(|&m| pts.iter().filter(|p| d3(p, &pts[m]) <= radius).count())
            .collect();
        let mut sorted = density.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        // Score: min distance to any tower of another cluster.
        let mut best: Option<(usize, f64)> = None;
        for (mi, &m) in members.iter().enumerate() {
            if density[mi] < median {
                continue; // noise guard
            }
            let score = clustering
                .labels
                .iter()
                .enumerate()
                .filter(|(_, &l)| l != c)
                .map(|(o, _)| d3(&pts[o], &pts[m]))
                .fold(f64::INFINITY, f64::min);
            match best {
                Some((_, bs)) if bs >= score => {}
                _ => best = Some((m, score)),
            }
        }
        out.push(best.expect("non-empty member set").0);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use towerlens_city::zone::PoiKind;
    use towerlens_mobility::config::SynthConfig;
    use towerlens_mobility::profiles::pure_mix;
    use towerlens_mobility::synth::tower_vector;
    use towerlens_pipeline::normalize::normalize_matrix;

    fn window() -> TraceWindow {
        TraceWindow::days(14)
    }

    fn zscored_pure(kind: PoiKind, id: usize, noise: f64) -> Vec<f64> {
        let cfg = SynthConfig {
            bin_noise_sigma: noise,
            day_noise_sigma: 0.0,
            tower_scale_sigma: 0.5,
            ..SynthConfig::default()
        };
        let v = tower_vector(&pure_mix(kind), &window(), &cfg, id);
        normalize_matrix(&[v]).unwrap().vectors.remove(0)
    }

    #[test]
    fn principal_bins_scale_with_weeks() {
        assert_eq!(principal_bins(&TraceWindow::paper()).unwrap(), [4, 28, 56]);
        assert_eq!(principal_bins(&TraceWindow::days(14)).unwrap(), [2, 14, 28]);
        assert_eq!(principal_bins(&TraceWindow::days(7)).unwrap(), [1, 7, 14]);
        assert!(principal_bins(&TraceWindow::days(5)).is_err());
    }

    #[test]
    fn dominant_bins_are_the_principal_ones() {
        let v = zscored_pure(PoiKind::Office, 0, 0.1);
        let summary = reconstruct_principal(&v, &window()).unwrap();
        // The daily line must be among the dominant bins for an
        // office tower; with the weekly structure, all three usually
        // are.
        assert!(
            summary.dominant.contains(&14),
            "dominant: {:?}",
            summary.dominant
        );
    }

    #[test]
    fn reconstruction_loses_little_energy_for_zscored_traffic() {
        // The paper's <6% claim is about raw traffic (dominated by DC
        // and the daily cycle). For z-scored vectors the DC is gone, so
        // the bound is looser but the structure still dominates for
        // low-noise towers.
        let v = zscored_pure(PoiKind::Resident, 1, 0.05);
        let summary = reconstruct_principal(&v, &window()).unwrap();
        assert!(summary.lost_energy < 0.25, "lost {}", summary.lost_energy);
        assert_eq!(summary.reconstructed.len(), v.len());
    }

    #[test]
    fn reconstruction_of_raw_traffic_loses_under_6_percent() {
        // Raw (unnormalised) aggregate-like traffic, the paper's Fig 12
        // setting.
        let cfg = SynthConfig {
            bin_noise_sigma: 0.05,
            day_noise_sigma: 0.0,
            tower_scale_sigma: 0.0,
            ..SynthConfig::default()
        };
        let v = tower_vector(&pure_mix(PoiKind::Resident), &window(), &cfg, 3);
        let summary = reconstruct_principal(&v, &window()).unwrap();
        assert!(summary.lost_energy < 0.06, "lost {}", summary.lost_energy);
    }

    #[test]
    fn office_towers_have_strong_weekly_amplitude() {
        // Fig 15(a)/16(a): office has the strongest weekly periodicity;
        // resident the weakest.
        let off = features_of(&[zscored_pure(PoiKind::Office, 0, 0.05)], &window()).unwrap();
        let res = features_of(&[zscored_pure(PoiKind::Resident, 1, 0.05)], &window()).unwrap();
        assert!(
            off[0].amp_week > 2.0 * res[0].amp_week,
            "office {} vs resident {}",
            off[0].amp_week,
            res[0].amp_week
        );
    }

    #[test]
    fn transport_has_strongest_half_day_amplitude() {
        // Fig 16(c): the double-hump (half-day) component is largest
        // for transport towers.
        let feats: Vec<TowerFeatures> = PoiKind::ALL
            .iter()
            .enumerate()
            .map(|(i, &k)| features_of(&[zscored_pure(k, i, 0.05)], &window()).unwrap()[0])
            .collect();
        let transport = feats[PoiKind::Transport.index()].amp_half;
        for (i, f) in feats.iter().enumerate() {
            if i != PoiKind::Transport.index() {
                assert!(
                    transport > f.amp_half,
                    "transport {} vs kind {i} {}",
                    transport,
                    f.amp_half
                );
            }
        }
    }

    #[test]
    fn office_and_resident_weekly_phases_oppose() {
        // Fig 15(a): office weekly phase is ~π from resident, and
        // entertainment sits on resident's side of the circle.
        let off = features_of(&[zscored_pure(PoiKind::Office, 0, 0.05)], &window()).unwrap();
        let res = features_of(&[zscored_pure(PoiKind::Resident, 1, 0.05)], &window()).unwrap();
        let ent = features_of(&[zscored_pure(PoiKind::Entertainment, 2, 0.05)], &window()).unwrap();
        let d = towerlens_dsp::circular::angular_distance(off[0].phase_week, res[0].phase_week);
        assert!(d > 2.0, "office/resident separation {d} (want ≈ π)");
        let d_ent_res =
            towerlens_dsp::circular::angular_distance(ent[0].phase_week, res[0].phase_week);
        let d_ent_off =
            towerlens_dsp::circular::angular_distance(ent[0].phase_week, off[0].phase_week);
        assert!(
            d_ent_res < d_ent_off,
            "entertainment ({}) closer to office ({d_ent_off}) than resident ({d_ent_res})",
            ent[0].phase_week
        );
    }

    #[test]
    fn commute_phase_ordering_resident_transport_office() {
        // Fig 16(b): the daily-component phases are *incremental* in
        // the order the morning migration flow passes through —
        // resident → transport → office. (The paper reads the smooth
        // phase transition in Fig 15(b) the same way.)
        use towerlens_dsp::circular::wrap_angle;
        let res = features_of(&[zscored_pure(PoiKind::Resident, 0, 0.02)], &window()).unwrap();
        let tra = features_of(&[zscored_pure(PoiKind::Transport, 1, 0.02)], &window()).unwrap();
        let off = features_of(&[zscored_pure(PoiKind::Office, 2, 0.02)], &window()).unwrap();
        let step1 = wrap_angle(tra[0].phase_day - res[0].phase_day);
        let step2 = wrap_angle(off[0].phase_day - tra[0].phase_day);
        assert!(step1 > 0.0, "transport not after resident: {step1}");
        assert!(step2 > 0.0, "office not after transport: {step2}");
    }

    #[test]
    fn cluster_stats_shapes() {
        let feats: Vec<TowerFeatures> = (0..6)
            .map(|i| {
                features_of(&[zscored_pure(PoiKind::ALL[i % 2], i, 0.1)], &window()).unwrap()[0]
            })
            .collect();
        let clustering = Clustering::from_labels(vec![0, 1, 0, 1, 0, 1]).unwrap();
        let stats = cluster_feature_stats(&feats, &clustering).unwrap();
        assert_eq!(stats.len(), 2);
        for cluster in &stats {
            for comp in cluster {
                assert!(comp.amp_mean >= 0.0);
                assert!(comp.amp_std >= 0.0);
            }
        }
    }

    #[test]
    fn representative_towers_prefer_extreme_members() {
        // Two clusters on a line in feature space; the representative
        // of each must be on its far side (max min-distance to the
        // other cluster), not in the middle.
        let mk = |a: f64| TowerFeatures {
            amp_week: 0.1,
            phase_week: 0.0,
            amp_day: a,
            phase_day: 0.0,
            amp_half: 0.0,
            phase_half: 0.0,
        };
        // Cluster 0 at 0.0..0.3, cluster 1 at 1.0..1.3.
        let features: Vec<TowerFeatures> = [0.0, 0.1, 0.2, 0.3, 1.0, 1.1, 1.2, 1.3]
            .iter()
            .map(|&a| mk(a))
            .collect();
        let clustering = Clustering::from_labels(vec![0, 0, 0, 0, 1, 1, 1, 1]).unwrap();
        let reps = representative_towers(&features, &clustering, &[0, 1]).unwrap();
        // The exact endpoints (0 and 7) are *noise-filtered out*: they
        // have below-median density. The representatives are the most
        // extreme members that survive the density guard.
        assert_eq!(reps[0], 1, "far non-noise end of cluster 0");
        assert_eq!(reps[1], 6, "far non-noise end of cluster 1");
    }

    #[test]
    fn representative_rejects_empty_cluster_request() {
        let features = vec![TowerFeatures {
            amp_week: 0.0,
            phase_week: 0.0,
            amp_day: 0.0,
            phase_day: 0.0,
            amp_half: 0.0,
            phase_half: 0.0,
        }];
        let clustering = Clustering::from_labels(vec![0]).unwrap();
        assert!(representative_towers(&features, &clustering, &[0]).is_ok());
        assert!(representative_towers(&features, &clustering, &[1]).is_err());
    }

    #[test]
    fn variance_peaks_at_principal_bins() {
        // Across towers of different kinds, the principal bins carry
        // the discriminating variance (Fig 13).
        let vectors: Vec<Vec<f64>> = PoiKind::ALL
            .iter()
            .enumerate()
            .flat_map(|(i, &k)| (0..3).map(move |j| zscored_pure(k, i * 3 + j, 0.1)))
            .collect();
        let var = amplitude_variance(&vectors).unwrap();
        let [kw, kd, kh] = principal_bins(&window()).unwrap();
        // The top-3 variance bins (excluding DC / mirrors) must include
        // the daily and half-day lines; the weekly line is at least in
        // the top 10.
        let half = var.len() / 2;
        let mut idx: Vec<usize> = (1..=half).collect();
        idx.sort_by(|&a, &b| var[b].partial_cmp(&var[a]).unwrap());
        assert!(idx[..4].contains(&kd), "top bins {:?}", &idx[..6]);
        assert!(idx[..4].contains(&kh), "top bins {:?}", &idx[..6]);
        assert!(idx[..10].contains(&kw), "top bins {:?}", &idx[..10]);
    }
}

#[cfg(test)]
mod calib {
    use super::*;
    use towerlens_city::zone::PoiKind;
    use towerlens_mobility::config::SynthConfig;
    use towerlens_mobility::profiles::pure_mix;
    use towerlens_mobility::synth::tower_vector;
    use towerlens_pipeline::normalize::normalize_matrix;

    #[test]
    #[ignore]
    fn print_features() {
        let w = TraceWindow::days(14);
        for kind in PoiKind::ALL {
            let cfg = SynthConfig {
                bin_noise_sigma: 0.0,
                day_noise_sigma: 0.0,
                tower_scale_sigma: 0.0,
                ..SynthConfig::default()
            };
            let v = tower_vector(&pure_mix(kind), &w, &cfg, 0);
            let z = normalize_matrix(&[v]).unwrap().vectors.remove(0);
            let f = features_of(&[z], &w).unwrap()[0];
            let ph = |p: f64| (-p / std::f64::consts::TAU * 24.0).rem_euclid(24.0);
            println!(
                "{kind:?}: Aw={:.3} Pw={:+.2} Ad={:.3} Pd={:+.2}(peak {:.1}h) Ah={:.3} Ph={:+.2}",
                f.amp_week,
                f.phase_week,
                f.amp_day,
                f.phase_day,
                ph(f.phase_day),
                f.amp_half,
                f.phase_half
            );
        }
    }
}

/// Goertzel-based feature extraction: identical output to
/// [`features_of`] (up to float error) at ~O(3·N) per tower instead of
/// a full FFT — the cheaper path when *only* the three principal
/// components are needed (e.g. streaming feature updates). The
/// benchmark suite quantifies the difference.
///
/// # Errors
/// As for [`features_of`].
pub fn features_of_goertzel(
    vectors: &[Vec<f64>],
    window: &TraceWindow,
) -> Result<Vec<TowerFeatures>, CoreError> {
    features_of_goertzel_par(vectors, window, 1)
}

/// [`features_of_goertzel`] fanned out over towers via
/// [`towerlens_par`] (`threads == 0` means available parallelism).
/// Each tower lands in its own slot and each worker counts Goertzel
/// evaluations in a private shard merged once at the end, so both the
/// features and the `dsp.goertzel.evaluations` counter are exactly
/// identical for every thread count.
///
/// # Errors
/// As for [`features_of`].
pub fn features_of_goertzel_par(
    vectors: &[Vec<f64>],
    window: &TraceWindow,
    threads: usize,
) -> Result<Vec<TowerFeatures>, CoreError> {
    let [kw, kd, kh] = principal_bins(window)?;
    let (out, tallies) =
        towerlens_par::par_map_indexed_tally(vectors, threads, 1, |_, v, shard| {
            let n = v.len() as f64;
            let (aw, pw) = towerlens_dsp::goertzel::goertzel_feature_sharded(v, kw, &mut shard[0])?;
            let (ad, pd) = towerlens_dsp::goertzel::goertzel_feature_sharded(v, kd, &mut shard[0])?;
            let (ah, ph) = towerlens_dsp::goertzel::goertzel_feature_sharded(v, kh, &mut shard[0])?;
            Ok::<TowerFeatures, CoreError>(TowerFeatures {
                amp_week: aw / n,
                phase_week: pw,
                amp_day: ad / n,
                phase_day: pd,
                amp_half: ah / n,
                phase_half: ph,
            })
        });
    towerlens_dsp::goertzel::record_evaluations(tallies[0]);
    out.into_iter().collect()
}

#[cfg(test)]
mod goertzel_path {
    use super::*;
    use towerlens_city::zone::PoiKind;
    use towerlens_mobility::config::SynthConfig;
    use towerlens_mobility::profiles::pure_mix;
    use towerlens_mobility::synth::tower_vector;

    #[test]
    fn matches_fft_features() {
        let w = TraceWindow::days(14);
        let vectors: Vec<Vec<f64>> = PoiKind::ALL
            .iter()
            .enumerate()
            .map(|(i, &k)| tower_vector(&pure_mix(k), &w, &SynthConfig::default(), i))
            .collect();
        let via_fft = features_of(&vectors, &w).unwrap();
        let via_goertzel = features_of_goertzel(&vectors, &w).unwrap();
        for (a, b) in via_fft.iter().zip(&via_goertzel) {
            assert!((a.amp_week - b.amp_week).abs() < 1e-6 * (a.amp_week + 1.0));
            assert!((a.phase_week - b.phase_week).abs() < 1e-6);
            assert!((a.amp_day - b.amp_day).abs() < 1e-6 * (a.amp_day + 1.0));
            assert!((a.phase_day - b.phase_day).abs() < 1e-6);
            assert!((a.amp_half - b.amp_half).abs() < 1e-6 * (a.amp_half + 1.0));
            assert!((a.phase_half - b.phase_half).abs() < 1e-6);
        }
    }

    /// §5's claims at the paper window (4 weeks, N = 4032): Goertzel
    /// at the principal bins {4, 28, 56} agrees with the FFT spectrum
    /// to 1e-9 relative, and the `{0} ∪ {4, 28, 56}` reconstruction
    /// loses < 6% of signal energy, on seeded raw workloads.
    #[test]
    fn goertzel_tracks_fft_to_1e9_and_reconstruction_keeps_94_percent() {
        let w = TraceWindow::paper();
        let cfg = SynthConfig {
            bin_noise_sigma: 0.05,
            day_noise_sigma: 0.0,
            tower_scale_sigma: 0.0,
            ..SynthConfig::default()
        };
        for (i, &kind) in PoiKind::ALL.iter().enumerate() {
            let v = tower_vector(&pure_mix(kind), &w, &cfg, i);
            let spec = towerlens_dsp::fft::fft_real(&v);
            for k in [4usize, 28, 56] {
                let g = towerlens_dsp::goertzel::goertzel(&v, k).unwrap();
                let err = (g - spec[k]).abs();
                assert!(
                    err < 1e-9 * (spec[k].abs() + 1.0),
                    "{kind:?} bin {k}: |Δ| = {err:e} vs |X| = {}",
                    spec[k].abs()
                );
            }
            // The paper's <6% bound (Fig 12) describes smooth diurnal
            // traffic; the synthetic transport/entertainment profiles
            // are spikier than real towers, so they only get a sanity
            // ceiling.
            let summary = reconstruct_principal(&v, &w).unwrap();
            let bound = match kind {
                PoiKind::Resident | PoiKind::Office => 0.06,
                PoiKind::Transport | PoiKind::Entertainment => 0.35,
            };
            assert!(
                summary.lost_energy < bound,
                "{kind:?} lost {} (bound {bound})",
                summary.lost_energy
            );
        }
    }

    #[test]
    fn parallel_goertzel_features_are_bit_identical_across_threads() {
        let w = TraceWindow::days(7);
        let vectors: Vec<Vec<f64>> = (0..12)
            .map(|i| {
                tower_vector(
                    &pure_mix(PoiKind::ALL[i % 4]),
                    &w,
                    &SynthConfig::default(),
                    i,
                )
            })
            .collect();
        let reference = features_of_goertzel_par(&vectors, &w, 1).unwrap();
        for threads in [2usize, 3, 8] {
            let par = features_of_goertzel_par(&vectors, &w, threads).unwrap();
            assert_eq!(reference, par, "threads={threads}");
        }
    }
}
