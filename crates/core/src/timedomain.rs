//! Time-domain characterisation of the identified patterns (§4).
//!
//! Everything here operates on *raw* (unnormalised) traffic so the
//! absolute quantities of Table 4 are meaningful; the Fig 11
//! interrelationships use per-profile normalisation.

use towerlens_cluster::dendrogram::Clustering;
use towerlens_dsp::stats::{argmax, argmin, pearson};
use towerlens_trace::time::TraceWindow;

use crate::error::CoreError;

/// Peak/valley characteristics of one average-day profile
/// (one row-half of Tables 4 and 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakValley {
    /// Maximum of the average-day profile (bytes per bin).
    pub max_traffic: f64,
    /// Minimum of the average-day profile.
    pub min_traffic: f64,
    /// `max / min` (∞ when the valley is zero).
    pub peak_valley_ratio: f64,
    /// Time of the peak, `(hour, minute)`.
    pub peak_time: (u32, u32),
    /// Time of the valley, `(hour, minute)`.
    pub valley_time: (u32, u32),
}

/// Time-domain statistics of one cluster.
#[derive(Debug, Clone)]
pub struct ClusterTimeStats {
    /// Average weekday profile (one value per bin-of-day).
    pub weekday_profile: Vec<f64>,
    /// Average weekend profile.
    pub weekend_profile: Vec<f64>,
    /// Average weekday daily amount / average weekend daily amount
    /// (Fig 10(a)).
    pub weekday_weekend_ratio: f64,
    /// Peak/valley features of the weekday profile.
    pub weekday: PeakValley,
    /// Peak/valley features of the weekend profile.
    pub weekend: PeakValley,
}

/// Splits a full-window series into average weekday and weekend day
/// profiles (bin-of-day resolution).
///
/// # Errors
/// [`CoreError::NotEnoughData`] if the window has no full day.
pub fn daily_profiles(
    series: &[f64],
    window: &TraceWindow,
) -> Result<(Vec<f64>, Vec<f64>), CoreError> {
    let per_day = (86_400 / window.bin_secs) as usize;
    if series.len() < per_day || per_day == 0 {
        return Err(CoreError::NotEnoughData {
            what: "bins for a daily profile",
            needed: per_day.max(1),
            got: series.len(),
        });
    }
    let mut weekday = vec![0.0; per_day];
    let mut weekend = vec![0.0; per_day];
    let mut n_weekday = 0usize;
    let mut n_weekend = 0usize;
    let days = series.len() / per_day;
    for day in 0..days {
        let target = if window.is_weekend_bin(day * per_day) {
            n_weekend += 1;
            &mut weekend
        } else {
            n_weekday += 1;
            &mut weekday
        };
        for (b, t) in target.iter_mut().enumerate() {
            *t += series[day * per_day + b];
        }
    }
    if n_weekday > 0 {
        for v in weekday.iter_mut() {
            *v /= n_weekday as f64;
        }
    }
    if n_weekend > 0 {
        for v in weekend.iter_mut() {
            *v /= n_weekend as f64;
        }
    }
    Ok((weekday, weekend))
}

/// Extracts peak/valley features from an average-day profile.
pub fn peak_valley(profile: &[f64], window: &TraceWindow) -> Result<PeakValley, CoreError> {
    let (peak_bin, max_traffic) = argmax(profile).ok_or(CoreError::NotEnoughData {
        what: "profile bins",
        needed: 1,
        got: 0,
    })?;
    let (valley_bin, min_traffic) = argmin(profile).expect("argmax succeeded");
    let ratio = if min_traffic > 0.0 {
        max_traffic / min_traffic
    } else {
        f64::INFINITY
    };
    Ok(PeakValley {
        max_traffic,
        min_traffic,
        peak_valley_ratio: ratio,
        peak_time: window.time_of_day(peak_bin),
        valley_time: window.time_of_day(valley_bin),
    })
}

/// Computes per-cluster aggregate series: `out[c][bin]` is the sum of
/// the raw traffic of the cluster's towers.
pub fn cluster_series(
    raw: &[Vec<f64>],
    clustering: &Clustering,
) -> Result<Vec<Vec<f64>>, CoreError> {
    if raw.len() != clustering.labels.len() {
        return Err(CoreError::NotEnoughData {
            what: "raw rows matching labels",
            needed: clustering.labels.len(),
            got: raw.len(),
        });
    }
    let n_bins = raw.first().map(|r| r.len()).unwrap_or(0);
    let mut out = vec![vec![0.0; n_bins]; clustering.k];
    for (row, &label) in raw.iter().zip(&clustering.labels) {
        for (acc, v) in out[label].iter_mut().zip(row) {
            *acc += v;
        }
    }
    Ok(out)
}

/// Full §4 statistics for one cluster's aggregate series.
pub fn cluster_time_stats(
    series: &[f64],
    window: &TraceWindow,
) -> Result<ClusterTimeStats, CoreError> {
    let (weekday_profile, weekend_profile) = daily_profiles(series, window)?;
    let wd_total: f64 = weekday_profile.iter().sum();
    let we_total: f64 = weekend_profile.iter().sum();
    let ratio = if we_total > 0.0 {
        wd_total / we_total
    } else {
        f64::INFINITY
    };
    let weekday = peak_valley(&weekday_profile, window)?;
    let weekend = peak_valley(&weekend_profile, window)?;
    Ok(ClusterTimeStats {
        weekday_profile,
        weekend_profile,
        weekday_weekend_ratio: ratio,
        weekday,
        weekend,
    })
}

/// The two rush-hour peaks of a transport-like profile: argmax over
/// the morning half (04:00–14:00) and the evening half (14:00–24:00).
pub fn double_peaks(profile: &[f64], window: &TraceWindow) -> Option<((u32, u32), (u32, u32))> {
    let per_day = profile.len();
    if per_day == 0 {
        return None;
    }
    let bin_of_hour =
        |h: f64| -> usize { ((h * 3_600.0 / window.bin_secs as f64) as usize).min(per_day - 1) };
    let morning = bin_of_hour(4.0)..bin_of_hour(14.0);
    let evening = bin_of_hour(14.0)..per_day;
    let m = argmax(&profile[morning.clone()])?;
    let e = argmax(&profile[evening.clone()])?;
    Some((
        window.time_of_day(morning.start + m.0),
        window.time_of_day(evening.start + e.0),
    ))
}

/// Circular lag (hours, in `[-12, 12)`) from time `a` to time `b`
/// (positive: `b` happens later in the day).
pub fn lag_hours(a: (u32, u32), b: (u32, u32)) -> f64 {
    let ah = a.0 as f64 + a.1 as f64 / 60.0;
    let bh = b.0 as f64 + b.1 as f64 / 60.0;
    let mut d = (bh - ah).rem_euclid(24.0);
    if d >= 12.0 {
        d -= 24.0;
    }
    d
}

/// Pearson correlation of two profiles after per-profile max
/// normalisation (the Fig 11 "comprehensive ≈ average of all"
/// comparison).
pub fn profile_correlation(a: &[f64], b: &[f64]) -> Option<f64> {
    pearson(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use towerlens_city::zone::PoiKind;
    use towerlens_mobility::config::SynthConfig;
    use towerlens_mobility::profiles::pure_mix;
    use towerlens_mobility::synth::tower_vector;
    use towerlens_trace::time::BINS_PER_DAY;

    fn noiseless(kind: PoiKind, window: &TraceWindow) -> Vec<f64> {
        tower_vector(&pure_mix(kind), window, &SynthConfig::noiseless(0), 0)
    }

    #[test]
    fn daily_profiles_split_correctly() {
        let w = TraceWindow::days(14);
        let series = noiseless(PoiKind::Office, &w);
        let (wd, we) = daily_profiles(&series, &w).unwrap();
        assert_eq!(wd.len(), BINS_PER_DAY);
        assert_eq!(we.len(), BINS_PER_DAY);
        // Office: weekdays much busier at 10:30 than weekends.
        let bin_1030 = 63;
        assert!(wd[bin_1030] > 1.4 * we[bin_1030]);
    }

    #[test]
    fn office_ratio_matches_profile_calibration() {
        let w = TraceWindow::days(14);
        let series = noiseless(PoiKind::Office, &w);
        let stats = cluster_time_stats(&series, &w).unwrap();
        assert!(
            (1.55..=2.05).contains(&stats.weekday_weekend_ratio),
            "ratio {}",
            stats.weekday_weekend_ratio
        );
    }

    #[test]
    fn transport_peak_valley_featurestable4() {
        let w = TraceWindow::days(14);
        let series = noiseless(PoiKind::Transport, &w);
        let stats = cluster_time_stats(&series, &w).unwrap();
        assert!(
            stats.weekday.peak_valley_ratio > 80.0,
            "ratio {}",
            stats.weekday.peak_valley_ratio
        );
        // Weekday peak at the morning rush.
        let (h, _) = stats.weekday.peak_time;
        assert!((7..=9).contains(&h), "peak hour {h}");
        // Valley in the small hours.
        let (vh, _) = stats.weekday.valley_time;
        assert!((2..=6).contains(&vh), "valley hour {vh}");
    }

    #[test]
    fn resident_peak_at_2130() {
        let w = TraceWindow::days(14);
        let series = noiseless(PoiKind::Resident, &w);
        let stats = cluster_time_stats(&series, &w).unwrap();
        let (h, m) = stats.weekday.peak_time;
        let hours = h as f64 + m as f64 / 60.0;
        assert!((20.8..=22.2).contains(&hours), "peak {hours}");
    }

    #[test]
    fn transport_double_peaks_found() {
        let w = TraceWindow::days(14);
        let series = noiseless(PoiKind::Transport, &w);
        let (wd, _) = daily_profiles(&series, &w).unwrap();
        let ((mh, _), (eh, _)) = double_peaks(&wd, &w).unwrap();
        assert!((7..=9).contains(&mh), "morning {mh}");
        assert!((17..=19).contains(&eh), "evening {eh}");
    }

    #[test]
    fn lag_arithmetic() {
        assert_eq!(lag_hours((18, 0), (21, 30)), 3.5);
        assert_eq!(lag_hours((23, 0), (1, 0)), 2.0);
        assert_eq!(lag_hours((1, 0), (23, 0)), -2.0);
        assert_eq!(lag_hours((6, 0), (18, 0)), -12.0); // boundary maps to -12
    }

    #[test]
    fn cluster_series_sums_members() {
        let raw = vec![vec![1.0, 2.0], vec![10.0, 20.0], vec![100.0, 200.0]];
        let clustering = Clustering::from_labels(vec![0, 1, 0]).unwrap();
        let series = cluster_series(&raw, &clustering).unwrap();
        assert_eq!(series[0], vec![101.0, 202.0]);
        assert_eq!(series[1], vec![10.0, 20.0]);
    }

    #[test]
    fn mismatched_lengths_error() {
        let clustering = Clustering::from_labels(vec![0, 0]).unwrap();
        assert!(cluster_series(&[vec![1.0]], &clustering).is_err());
        let w = TraceWindow::days(1);
        assert!(daily_profiles(&[1.0; 10], &w).is_err());
    }

    #[test]
    fn comprehensive_mixture_correlates_with_average() {
        let w = TraceWindow::days(14);
        let mix = [0.25, 0.25, 0.25, 0.25];
        let comp = tower_vector(&mix, &w, &SynthConfig::noiseless(0), 0);
        // "Average of all towers" ≈ equal-weight sum of pure series.
        let sum: Vec<f64> = (0..w.n_bins)
            .map(|b| {
                PoiKind::ALL
                    .iter()
                    .map(|&k| noiseless(k, &w)[b])
                    .sum::<f64>()
            })
            .collect();
        let r = profile_correlation(&comp, &sum).unwrap();
        assert!(r > 0.99, "correlation {r}");
    }
}
