//! Geographic context of traffic patterns (§3.3).
//!
//! Given the discovered clusters and the city's POI layer, this module
//!
//! 1. computes each cluster's POI profile: min-max normalise each POI
//!    type across towers, then average per cluster (Table 3 / Fig 9);
//! 2. assigns urban-function labels: the four *pure* labels go to the
//!    clusters where their normalised POI share is most dominant
//!    (greedy best-match, one label per cluster); remaining clusters
//!    are labelled *comprehensive* — mirroring how the paper labels
//!    the cluster with no dominant POI type;
//! 3. finds each cluster's highest-tower-density point and the POI
//!    counts within 200 m of it (Fig 7 / Table 2);
//! 4. scores the labelling against the city's ground truth (the
//!    synthetic equivalent of the paper's Fig 8 case-study check).

use towerlens_city::city::City;
use towerlens_city::density::DensityGrid;
use towerlens_city::geo::GeoPoint;
use towerlens_city::zone::{PoiKind, RegionKind};
use towerlens_cluster::dendrogram::Clustering;
use towerlens_dsp::normalize::minmax;

use crate::error::CoreError;

/// POI query radius the paper uses (metres).
pub const POI_RADIUS_M: f64 = 200.0;

/// The labelling result.
#[derive(Debug, Clone)]
pub struct GeoLabels {
    /// Per-cluster assigned region kind.
    pub labels: Vec<RegionKind>,
    /// Per-cluster averaged min-max-normalised POI profile
    /// (Table 3): `profiles[cluster][poi kind]`.
    pub poi_profiles: Vec<[f64; 4]>,
    /// Per-cluster highest-density point (Fig 7's A–E).
    pub hotspots: Vec<GeoPoint>,
    /// POI counts within 200 m of each hotspot (Table 2).
    pub hotspot_poi: Vec<[usize; 4]>,
    /// Fraction of towers whose assigned cluster label matches the
    /// ground-truth kind of their zone (the synthetic Fig 8 check).
    pub ground_truth_agreement: f64,
}

/// Labels clusters with urban functional regions.
///
/// `kept_ids[i]` maps vector `i` (and `clustering.labels[i]`) back to
/// a tower id in `city`. The per-tower POI scans fan out over up to
/// `threads` workers (`0` = available parallelism); the result is
/// bit-identical for every thread count.
///
/// # Errors
/// [`CoreError::NotEnoughData`] if the clustering is empty or ids are
/// inconsistent.
pub fn label_clusters(
    city: &City,
    clustering: &Clustering,
    kept_ids: &[usize],
    threads: usize,
) -> Result<GeoLabels, CoreError> {
    let positions: Vec<GeoPoint> = city.towers().iter().map(|t| t.position).collect();
    let mut labels = label_clusters_parts(
        &positions,
        city.bounds(),
        city.pois(),
        clustering,
        kept_ids,
        threads,
    )?;
    // Ground-truth agreement is only computable against a synthetic
    // city (real deployments have no oracle).
    let mut agree = 0usize;
    for (i, &label) in clustering.labels.iter().enumerate() {
        if labels.labels[label] == city.towers()[kept_ids[i]].kind_truth {
            agree += 1;
        }
    }
    labels.ground_truth_agreement = agree as f64 / kept_ids.len() as f64;
    Ok(labels)
}

/// City-independent labelling: works from tower positions, a bounding
/// box, and a POI index — the form real (non-synthetic) deployments
/// use. [`GeoLabels::ground_truth_agreement`] is 0 here (no oracle).
///
/// # Errors
/// As for [`label_clusters`].
pub fn label_clusters_parts(
    positions: &[GeoPoint],
    bounds: &towerlens_city::geo::BoundingBox,
    pois: &towerlens_city::poi::PoiIndex,
    clustering: &Clustering,
    kept_ids: &[usize],
    threads: usize,
) -> Result<GeoLabels, CoreError> {
    if clustering.labels.len() != kept_ids.len() || kept_ids.is_empty() {
        return Err(CoreError::NotEnoughData {
            what: "labelled towers",
            needed: 1,
            got: kept_ids.len().min(clustering.labels.len()),
        });
    }
    let k = clustering.k;

    // --- Table 3: min-max normalised POI averaged per cluster -----
    // The dominant cost here: one radius query per kept tower. Each
    // query is independent and lands in its own slot, so fanning out
    // is bit-identical to the serial scan.
    let raw_counts: Vec<[f64; 4]> = towerlens_par::par_map_indexed(kept_ids, threads, |_, &id| {
        let c = positions
            .get(id)
            .map(|p| pois.counts_within(p, POI_RADIUS_M))
            .unwrap_or([0; 4]);
        [c[0] as f64, c[1] as f64, c[2] as f64, c[3] as f64]
    });
    let mut profiles = vec![[0.0f64; 4]; k];
    let sizes = clustering.sizes();
    for poi in 0..4 {
        let column: Vec<f64> = raw_counts.iter().map(|c| c[poi]).collect();
        let normalised = minmax(&column)?;
        for (i, &label) in clustering.labels.iter().enumerate() {
            profiles[label][poi] += normalised[i];
        }
    }
    for (profile, &size) in profiles.iter_mut().zip(&sizes) {
        if size > 0 {
            for v in profile.iter_mut() {
                *v /= size as f64;
            }
        }
    }

    // --- label assignment ------------------------------------------
    let labels = assign_labels(&profiles);

    // --- Fig 7 / Table 2: hotspots ----------------------------------
    let mut hotspots = Vec::with_capacity(k);
    let mut hotspot_poi = Vec::with_capacity(k);
    for c in 0..k {
        let mut grid = DensityGrid::new(*bounds, 48, 48);
        for (i, &label) in clustering.labels.iter().enumerate() {
            if label == c {
                if let Some(p) = positions.get(kept_ids[i]) {
                    grid.add(p, 1.0);
                }
            }
        }
        let (col, row, _) = grid.argmax();
        let point = grid.cell_center(col, row);
        hotspots.push(point);
        hotspot_poi.push(pois.counts_within(&point, POI_RADIUS_M));
    }

    Ok(GeoLabels {
        labels,
        poi_profiles: profiles,
        hotspots,
        hotspot_poi,
        ground_truth_agreement: 0.0,
    })
}

/// Greedy label assignment: repeatedly take the (cluster, pure-kind)
/// pair with the highest *dominance* — the kind's share of the
/// cluster's normalised POI profile — among unassigned clusters and
/// unused kinds; leftover clusters become comprehensive.
fn assign_labels(profiles: &[[f64; 4]]) -> Vec<RegionKind> {
    let k = profiles.len();
    let mut labels = vec![RegionKind::Comprehensive; k];
    let mut cluster_used = vec![false; k];
    let mut kind_used = [false; 4];
    // Dominance matrix.
    let share = |c: usize, p: usize| -> f64 {
        let total: f64 = profiles[c].iter().sum();
        if total <= 0.0 {
            0.0
        } else {
            profiles[c][p] / total
        }
    };
    for _ in 0..k.min(4) {
        let mut best: Option<(usize, usize, f64)> = None;
        for (c, &c_used) in cluster_used.iter().enumerate() {
            if c_used {
                continue;
            }
            for (p, &p_used) in kind_used.iter().enumerate() {
                if p_used {
                    continue;
                }
                let s = share(c, p);
                match best {
                    Some((_, _, bs)) if bs >= s => {}
                    _ => best = Some((c, p, s)),
                }
            }
        }
        let Some((c, p, _)) = best else { break };
        cluster_used[c] = true;
        kind_used[p] = true;
        labels[c] = match PoiKind::ALL[p] {
            PoiKind::Resident => RegionKind::Resident,
            PoiKind::Transport => RegionKind::Transport,
            PoiKind::Office => RegionKind::Office,
            PoiKind::Entertainment => RegionKind::Entertainment,
        };
    }
    labels
}

/// Finds the cluster index carrying a given label, if any.
pub fn cluster_of_kind(labels: &[RegionKind], kind: RegionKind) -> Option<usize> {
    labels.iter().position(|&l| l == kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_labels_diagonal_dominance() {
        // Profiles with an obvious diagonal plus one flat cluster.
        let profiles = vec![
            [0.9, 0.1, 0.1, 0.1], // resident-dominant
            [0.1, 0.8, 0.1, 0.1], // transport-dominant
            [0.1, 0.1, 0.9, 0.2], // office-dominant
            [0.1, 0.1, 0.2, 0.9], // entertainment-dominant
            [0.3, 0.3, 0.3, 0.3], // flat
        ];
        let labels = assign_labels(&profiles);
        assert_eq!(labels[0], RegionKind::Resident);
        assert_eq!(labels[1], RegionKind::Transport);
        assert_eq!(labels[2], RegionKind::Office);
        assert_eq!(labels[3], RegionKind::Entertainment);
        assert_eq!(labels[4], RegionKind::Comprehensive);
    }

    #[test]
    fn assign_labels_resolves_contention_by_dominance() {
        // Two clusters both office-heavy; the more dominant one wins,
        // the other must take its second-best available kind.
        let profiles = vec![
            [0.05, 0.05, 0.95, 0.05], // strongly office
            [0.30, 0.05, 0.60, 0.05], // office-ish but mixed
        ];
        let labels = assign_labels(&profiles);
        assert_eq!(labels[0], RegionKind::Office);
        assert_eq!(labels[1], RegionKind::Resident);
    }

    #[test]
    fn fewer_clusters_than_kinds() {
        let profiles = vec![[0.9, 0.0, 0.1, 0.0], [0.0, 0.0, 0.9, 0.1]];
        let labels = assign_labels(&profiles);
        assert_eq!(labels.len(), 2);
        assert!(labels.contains(&RegionKind::Resident));
        assert!(labels.contains(&RegionKind::Office));
    }

    #[test]
    fn cluster_of_kind_lookup() {
        let labels = vec![RegionKind::Office, RegionKind::Resident];
        assert_eq!(cluster_of_kind(&labels, RegionKind::Resident), Some(1));
        assert_eq!(cluster_of_kind(&labels, RegionKind::Transport), None);
    }

    #[test]
    fn empty_input_is_error() {
        let city = towerlens_city::generate::generate(&towerlens_city::config::CityConfig::tiny(1))
            .unwrap();
        let clustering = Clustering::from_labels(vec![0]).unwrap();
        assert!(label_clusters(&city, &clustering, &[], 1).is_err());
    }
}
