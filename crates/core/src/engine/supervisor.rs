//! Supervised stage execution: retry policies with deterministic
//! backoff, watchdog deadlines, a circuit breaker for flapping
//! optional stages, and seeded transient-I/O fault injection.
//!
//! The paper's pipeline ran for a month on a Hadoop cluster (§2),
//! where stragglers, transient I/O failures, and task restarts are
//! the norm. This module is the engine's answer: a [`Supervisor`]
//! bundles
//!
//! * a [`RetryPolicy`] — transient failures (checkpoint I/O errors
//!   and stage errors marked via [`super::StageContext::fail_transient`])
//!   are retried with seeded exponential backoff + jitter; permanent
//!   failures fail fast. The backoff schedule is a pure function of
//!   `(seed, stage, attempt)` — no wall-clock values — so supervised
//!   runs stay bit-reproducible;
//! * an optional per-stage wall-time budget enforced by a watchdog
//!   monitor thread — an overrunning stage is declared lost with a
//!   typed [`EngineError::StageTimedOut`] that flows through the
//!   existing failed/pruned semantics;
//! * a [`BreakerPolicy`] — an optional stage that keeps failing stops
//!   retrying after N consecutive failures (the breaker *opens*) and
//!   degrades immediately instead of burning its whole retry budget.
//!
//! The [`IoFaultInjector`] sits behind the checkpoint store and makes
//! saves/loads fail transiently on demand (`TOWERLENS_FAULT_IO`,
//! mirroring `TOWERLENS_FAULT_PANIC`), so the retry path is exercised
//! end-to-end by tests rather than asserted in prose.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use towerlens_trace::faults::SplitMix64;

use super::checkpoint::{fnv1a64, CheckpointError};
use super::EngineError;

/// Marker prefix a stage puts on an error message to classify its own
/// failure as transient (retryable). See
/// [`super::StageContext::fail_transient`].
pub const TRANSIENT_PREFIX: &str = "transient: ";

impl EngineError {
    /// Whether this failure is worth retrying: checkpoint I/O errors
    /// (the disk may come back) and stage errors explicitly marked
    /// transient by the stage itself. Panics, timeouts, scheduling
    /// errors, and ordinary stage failures are permanent and fail
    /// fast.
    pub fn is_transient(&self) -> bool {
        match self {
            EngineError::Checkpoint(CheckpointError::Io { .. }) => true,
            EngineError::Stage { message, .. } => message.starts_with(TRANSIENT_PREFIX),
            _ => false,
        }
    }
}

/// Per-stage retry with deterministic seeded exponential backoff.
///
/// The delay before retry `attempt` (0-based) is
/// `min(cap, base·2^attempt + jitter)` with `jitter` drawn uniformly
/// from `[0, base·2^attempt)` by a [`SplitMix64`] stream seeded from
/// `(seed, stage, attempt)` alone — the schedule is a pure function
/// of its inputs and monotonically non-decreasing in `attempt`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries per operation (0 = fail on first error).
    pub retries: u32,
    /// Backoff unit: the delay before the first retry is in
    /// `[base, 2·base)`.
    pub base: Duration,
    /// Ceiling on any single delay.
    pub cap: Duration,
    /// Jitter seed; fixed by default so identical runs sleep
    /// identically.
    pub seed: u64,
}

impl RetryPolicy {
    /// No retries: every error is final. The engine default, so
    /// unsupervised runs behave exactly as before.
    pub fn none() -> Self {
        RetryPolicy {
            retries: 0,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(1),
            seed: 0x70DE_71E5,
        }
    }

    /// `retries` attempts with the default base (25 ms), cap (1 s),
    /// and seed.
    pub fn new(retries: u32) -> Self {
        RetryPolicy {
            retries,
            ..RetryPolicy::none()
        }
    }

    /// The delay before retry `attempt` (0-based) of an operation on
    /// `stage`. The stage name is folded into the seed so sibling
    /// stages retrying in the same wave do not sleep in lockstep.
    pub fn delay(&self, stage: &str, attempt: u32) -> Duration {
        backoff_delay(
            self.base,
            self.cap,
            self.seed ^ fnv1a64(stage.as_bytes()),
            attempt,
        )
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// The pure backoff schedule: `min(cap, base·2^attempt + jitter)`
/// with `jitter ∈ [0, base·2^attempt)` drawn from one [`SplitMix64`]
/// value seeded by `(seed, attempt)`. Once the exponential slot
/// reaches `cap` the delay is exactly `cap` (no jitter), which keeps
/// the schedule monotonically non-decreasing even past the cap.
pub fn backoff_delay(base: Duration, cap: Duration, seed: u64, attempt: u32) -> Duration {
    let shift = attempt.min(63);
    let slot: u128 = base.as_nanos().saturating_mul(1u128 << shift);
    let cap_ns = cap.as_nanos();
    if slot == 0 {
        return Duration::ZERO;
    }
    if slot >= cap_ns {
        return cap;
    }
    let mut rng = SplitMix64::new(seed ^ (u64::from(attempt) + 1).wrapping_mul(0x9E37_79B9));
    let jitter = (rng.next_u64() as u128) % slot;
    let nanos = slot.saturating_add(jitter).min(cap_ns);
    Duration::from_nanos(nanos.min(u64::MAX as u128) as u64)
}

/// Circuit breaker for flapping optional stages: after `threshold`
/// consecutive failed attempts, an optional stage stops retrying —
/// the breaker *opens* — and the stage degrades (failed + dependents
/// pruned) immediately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive failures before the breaker opens (≥ 1).
    pub threshold: u32,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy { threshold: 3 }
    }
}

/// The full supervision configuration a [`super::Graph`] runs under.
///
/// [`Supervisor::default`] — no retries, no deadline — reproduces the
/// unsupervised engine exactly, which is what
/// [`super::Graph::run`] uses.
#[derive(Debug, Clone, Default)]
pub struct Supervisor {
    /// Retry policy for transient stage and checkpoint failures.
    pub retry: RetryPolicy,
    /// Optional per-stage wall-time budget. When set, a watchdog
    /// monitor thread declares any stage still running past the
    /// budget lost ([`EngineError::StageTimedOut`]).
    pub stage_timeout: Option<Duration>,
    /// Circuit breaker for optional stages.
    pub breaker: BreakerPolicy,
}

impl Supervisor {
    /// A supervisor with `retries` transient retries and an optional
    /// stage deadline, under the default backoff and breaker.
    pub fn new(retries: u32, stage_timeout: Option<Duration>) -> Self {
        Supervisor {
            retry: RetryPolicy::new(retries),
            stage_timeout,
            breaker: BreakerPolicy::default(),
        }
    }
}

/// Which checkpoint-store operation an injected fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Checkpoint writes.
    Save,
    /// Checkpoint reads.
    Load,
    /// Both.
    Any,
}

#[derive(Debug)]
enum FaultMode {
    /// Fail the next `remaining` matching operations, then recover —
    /// the deterministic "transient burst" used by the chaos tests.
    Burst(AtomicU64),
    /// Fail each matching operation with probability `fraction`,
    /// drawn from a seeded stream.
    Random(Mutex<SplitMix64>, f64),
}

/// Typed rejection of a malformed failpoint spec
/// (`TOWERLENS_FAULT_IO`). A typo'd failpoint used to be warned about
/// and silently ignored; a chaos run with a misspelt spec would then
/// *pass* while injecting nothing. Every variant names the field that
/// was wrong so the spec can be fixed from the error alone.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpecError {
    /// The operation field is not `save`, `load`, or `any`.
    BadOp {
        /// What was found instead.
        found: String,
    },
    /// The stage field is absent or empty.
    MissingStage,
    /// The third field (burst count or `p<fraction>`) is absent.
    MissingMode,
    /// The burst count is not an unsigned integer.
    BadCount {
        /// What was found instead.
        found: String,
    },
    /// The `p<fraction>` field does not parse as a float.
    BadFraction {
        /// What was found instead.
        found: String,
    },
    /// The fraction parses but lies outside `[0, 1]`.
    FractionOutOfRange {
        /// The out-of-range value.
        value: f64,
    },
    /// Probabilistic mode without its seed field.
    MissingSeed,
    /// The seed field is not an unsigned integer.
    BadSeed {
        /// What was found instead.
        found: String,
    },
    /// Extra `:`-separated fields after a complete spec.
    TrailingFields,
}

impl std::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSpecError::BadOp { found } => {
                write!(f, "bad op `{found}` (want save|load|any)")
            }
            FaultSpecError::MissingStage => write!(f, "missing stage (use `*` for all)"),
            FaultSpecError::MissingMode => write!(f, "missing count or p<fraction>"),
            FaultSpecError::BadCount { found } => write!(f, "bad count `{found}`"),
            FaultSpecError::BadFraction { found } => write!(f, "bad fraction `{found}`"),
            FaultSpecError::FractionOutOfRange { value } => {
                write!(f, "fraction {value} outside [0, 1]")
            }
            FaultSpecError::MissingSeed => {
                write!(
                    f,
                    "probabilistic mode needs a seed: <op>:<stage>:p<f>:<seed>"
                )
            }
            FaultSpecError::BadSeed { found } => write!(f, "bad seed `{found}`"),
            FaultSpecError::TrailingFields => write!(f, "trailing fields in spec"),
        }
    }
}

impl std::error::Error for FaultSpecError {}

/// Seeded transient-I/O fault injection behind the checkpoint store.
///
/// Spec grammar (the `TOWERLENS_FAULT_IO` environment variable):
///
/// ```text
/// <op>:<stage>:<n>           fail the next n matching ops (burst)
/// <op>:<stage>:p<f>:<seed>   fail each matching op with prob. f
/// ```
///
/// where `<op>` is `save`, `load`, or `any`, and `<stage>` is a stage
/// name or `*`. Example: `save:vectorize:2` fails the next two saves
/// of the `vectorize` checkpoint, then recovers — a retry budget of 2
/// rides through it bit-identically.
#[derive(Debug)]
pub struct IoFaultInjector {
    op: FaultOp,
    stage: String,
    mode: FaultMode,
}

impl IoFaultInjector {
    /// Parses a failpoint spec (see the type docs for the grammar).
    ///
    /// # Errors
    /// A [`FaultSpecError`] naming the malformed field.
    pub fn parse(spec: &str) -> Result<Self, FaultSpecError> {
        let mut parts = spec.split(':');
        let op = match parts.next() {
            Some("save") => FaultOp::Save,
            Some("load") => FaultOp::Load,
            Some("any") => FaultOp::Any,
            other => {
                return Err(FaultSpecError::BadOp {
                    found: other.unwrap_or("").to_string(),
                })
            }
        };
        let stage = parts
            .next()
            .filter(|s| !s.is_empty())
            .ok_or(FaultSpecError::MissingStage)?
            .to_string();
        let third = parts.next().ok_or(FaultSpecError::MissingMode)?;
        let mode = if let Some(frac) = third.strip_prefix('p') {
            let fraction: f64 = frac.parse().map_err(|_| FaultSpecError::BadFraction {
                found: frac.to_string(),
            })?;
            if !(0.0..=1.0).contains(&fraction) {
                return Err(FaultSpecError::FractionOutOfRange { value: fraction });
            }
            let seed_field = parts.next().ok_or(FaultSpecError::MissingSeed)?;
            let seed: u64 = seed_field.parse().map_err(|_| FaultSpecError::BadSeed {
                found: seed_field.to_string(),
            })?;
            FaultMode::Random(Mutex::new(SplitMix64::new(seed)), fraction)
        } else {
            let n: u64 = third.parse().map_err(|_| FaultSpecError::BadCount {
                found: third.to_string(),
            })?;
            FaultMode::Burst(AtomicU64::new(n))
        };
        if parts.next().is_some() {
            return Err(FaultSpecError::TrailingFields);
        }
        Ok(IoFaultInjector { op, stage, mode })
    }

    /// Builds an injector from the `TOWERLENS_FAULT_IO` environment
    /// variable. `Ok(None)` when unset; a malformed spec is a hard
    /// [`FaultSpecError`] — a typo'd failpoint must fail the run
    /// loudly rather than silently injecting nothing (a chaos pass
    /// that tested nothing is worse than no chaos pass).
    ///
    /// # Errors
    /// The [`FaultSpecError`] for a set-but-malformed spec.
    pub fn from_env() -> Result<Option<Self>, FaultSpecError> {
        match std::env::var("TOWERLENS_FAULT_IO") {
            Err(_) => Ok(None),
            Ok(spec) => Self::parse(&spec).map(Some),
        }
    }

    /// Whether this operation should fail now. Burst counters tick
    /// down only on matching operations, so the burst length is exact
    /// per target.
    pub fn should_fail(&self, op: FaultOp, stage: &str) -> bool {
        let op_matches = matches!(self.op, FaultOp::Any) || self.op == op;
        if !op_matches || (self.stage != "*" && self.stage != stage) {
            return false;
        }
        match &self.mode {
            FaultMode::Burst(remaining) => remaining
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok(),
            FaultMode::Random(rng, fraction) => rng
                .lock()
                .map(|mut r| r.next_f64() < *fraction)
                .unwrap_or(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_pure_and_monotone() {
        let (base, cap) = (Duration::from_millis(25), Duration::from_secs(1));
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            let mut prev = Duration::ZERO;
            for attempt in 0..24 {
                let a = backoff_delay(base, cap, seed, attempt);
                let b = backoff_delay(base, cap, seed, attempt);
                assert_eq!(a, b, "not pure at attempt {attempt}");
                assert!(
                    a >= prev,
                    "decreased at attempt {attempt}: {prev:?} -> {a:?}"
                );
                assert!(a <= cap);
                prev = a;
            }
            assert_eq!(backoff_delay(base, cap, seed, 40), cap);
        }
    }

    #[test]
    fn backoff_first_retry_is_at_least_base() {
        let d = backoff_delay(Duration::from_millis(25), Duration::from_secs(1), 3, 0);
        assert!(d >= Duration::from_millis(25) && d < Duration::from_millis(50));
    }

    #[test]
    fn policy_folds_stage_into_seed() {
        let p = RetryPolicy::new(3);
        assert_eq!(p.delay("cluster", 1), p.delay("cluster", 1));
        // Different stages get different jitter (same slot, so equal
        // only if the jitter draw collides — astronomically unlikely).
        assert_ne!(p.delay("cluster", 1), p.delay("vectorize", 1));
    }

    #[test]
    fn transient_classification() {
        let io = EngineError::Checkpoint(CheckpointError::Io {
            path: "x".into(),
            message: "disk hiccup".into(),
        });
        assert!(io.is_transient());
        let marked = EngineError::Stage {
            stage: "s".into(),
            message: format!("{TRANSIENT_PREFIX}flaky upstream"),
        };
        assert!(marked.is_transient());
        let plain = EngineError::Stage {
            stage: "s".into(),
            message: "bad data".into(),
        };
        assert!(!plain.is_transient());
        let panicked = EngineError::StagePanicked {
            stage: "s".into(),
            message: "boom".into(),
        };
        assert!(!panicked.is_transient());
        let timed_out = EngineError::StageTimedOut {
            stage: "s".into(),
            budget_ms: 10,
        };
        assert!(!timed_out.is_transient());
    }

    #[test]
    fn burst_injector_fails_exactly_n_matching_ops() {
        let inj = IoFaultInjector::parse("save:vectorize:2").unwrap();
        // Non-matching ops neither fail nor consume the burst.
        assert!(!inj.should_fail(FaultOp::Load, "vectorize"));
        assert!(!inj.should_fail(FaultOp::Save, "cluster"));
        assert!(inj.should_fail(FaultOp::Save, "vectorize"));
        assert!(inj.should_fail(FaultOp::Save, "vectorize"));
        assert!(!inj.should_fail(FaultOp::Save, "vectorize"), "burst over");
    }

    #[test]
    fn wildcard_and_any_match_everything() {
        let inj = IoFaultInjector::parse("any:*:3").unwrap();
        assert!(inj.should_fail(FaultOp::Save, "a"));
        assert!(inj.should_fail(FaultOp::Load, "b"));
        assert!(inj.should_fail(FaultOp::Save, "c"));
        assert!(!inj.should_fail(FaultOp::Load, "d"));
    }

    #[test]
    fn random_injector_is_seed_deterministic() {
        let fire = |seed: u64| -> Vec<bool> {
            let inj = IoFaultInjector::parse(&format!("load:*:p0.5:{seed}")).unwrap();
            (0..32)
                .map(|_| inj.should_fail(FaultOp::Load, "x"))
                .collect()
        };
        assert_eq!(fire(7), fire(7));
        assert_ne!(fire(7), fire(8));
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for (bad, want) in [
            (
                "",
                FaultSpecError::BadOp {
                    found: String::new(),
                },
            ),
            ("save", FaultSpecError::MissingStage),
            ("save:", FaultSpecError::MissingStage),
            ("save:vectorize", FaultSpecError::MissingMode),
            (
                "write:vectorize:1",
                FaultSpecError::BadOp {
                    found: "write".to_string(),
                },
            ),
            (
                "save:vectorize:x",
                FaultSpecError::BadCount {
                    found: "x".to_string(),
                },
            ),
            (
                "save:vectorize:p2.0:1",
                FaultSpecError::FractionOutOfRange { value: 2.0 },
            ),
            (
                "save:vectorize:pz:1",
                FaultSpecError::BadFraction {
                    found: "z".to_string(),
                },
            ),
            ("save:vectorize:p0.5", FaultSpecError::MissingSeed),
            (
                "save:vectorize:p0.5:nope",
                FaultSpecError::BadSeed {
                    found: "nope".to_string(),
                },
            ),
            ("save:vectorize:1:extra", FaultSpecError::TrailingFields),
        ] {
            assert_eq!(
                IoFaultInjector::parse(bad).unwrap_err(),
                want,
                "spec `{bad}`"
            );
        }
    }

    #[test]
    fn fault_spec_errors_render_the_offending_field() {
        let rendered = FaultSpecError::BadOp {
            found: "write".to_string(),
        }
        .to_string();
        assert!(rendered.contains("write"), "{rendered}");
        let rendered = FaultSpecError::FractionOutOfRange { value: 2.0 }.to_string();
        assert!(rendered.contains('2'), "{rendered}");
    }
}
