//! The stage-graph execution engine.
//!
//! A study (or any other multi-phase analysis) is expressed as a set
//! of named [`Stage`]s with declared dependencies. The [`Graph`]
//! runner validates the graph, schedules it in topological *waves*
//! (every stage of a wave has all dependencies satisfied by earlier
//! waves), runs the stages of a wave concurrently on scoped threads,
//! and records a [`StageReport`] per stage — wall time plus
//! input/output cardinality [`Card`]s — into a [`RunReport`].
//!
//! Stages exchange data through a typed artifact store keyed by stage
//! name: each stage produces exactly one artifact of the graph's
//! artifact type `A` (typically an enum over the pipeline's
//! intermediate products), and reads its dependencies' artifacts
//! through the [`StageContext`].
//!
//! Stages that implement a [`StageCodec`] can be *checkpointed*: when
//! the runner is given a [`CheckpointStore`], a completed stage's
//! artifact is persisted to disk, and a later run with the same store
//! (and a matching config fingerprint) reloads it instead of
//! recomputing — the stage is reported [`StageStatus::Cached`].
//! Upstream stages whose artifacts are then no longer demanded by any
//! stage that actually has to run are not executed at all and are
//! reported [`StageStatus::Skipped`].
//!
//! The checkpoint format is a line-oriented text file (the same
//! hand-rolled-TSV idiom as the CLI dataset files); floats are stored
//! as IEEE-754 bit patterns so a reloaded artifact is *bit-identical*
//! to the computed one. Corrupt or truncated files surface a typed
//! [`CheckpointError`], never a panic.

pub mod checkpoint;
pub mod report;
pub mod runner;
pub mod stage;
pub mod study_stages;
pub mod supervisor;

pub use checkpoint::{fnv1a64, fsck_file, CheckpointError, CheckpointStore, FsckInfo};
pub use report::{RunReport, StageReport, StageStatus};
pub use runner::{Graph, RunOutcome};
pub use stage::{Card, Stage, StageCodec, StageContext, StageOutput};
pub use study_stages::{
    decode_normalized, decode_patterns, encode_normalized, encode_patterns, study_fingerprint,
    study_graph, StudyArtifact,
};
pub use supervisor::{
    backoff_delay, BreakerPolicy, FaultOp, FaultSpecError, IoFaultInjector, RetryPolicy,
    Supervisor, TRANSIENT_PREFIX,
};

/// Errors surfaced by graph validation and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Two stages were registered under the same name.
    DuplicateStage {
        /// The offending name.
        name: String,
    },
    /// A stage depends on a name no stage provides.
    UnknownDependency {
        /// The depending stage.
        stage: String,
        /// The unknown dependency name.
        dep: String,
    },
    /// The dependency graph contains a cycle.
    Cycle {
        /// Stages that could not be scheduled.
        stages: Vec<String>,
    },
    /// A stage asked its context for an artifact that is not
    /// available (not a declared dependency, or its producer was
    /// skipped).
    MissingArtifact {
        /// The requesting stage.
        stage: String,
        /// The requested artifact name.
        dep: String,
    },
    /// A stage's own computation failed.
    Stage {
        /// The failing stage.
        stage: String,
        /// The rendered failure.
        message: String,
    },
    /// A stage panicked; the panic was contained by the runner.
    StagePanicked {
        /// The panicking stage.
        stage: String,
        /// The rendered panic payload.
        message: String,
    },
    /// A stage overran its supervised wall-time budget and was
    /// declared lost by the watchdog.
    StageTimedOut {
        /// The overrunning stage.
        stage: String,
        /// The budget it blew, in milliseconds.
        budget_ms: u64,
    },
    /// A checkpoint could not be read or written.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::DuplicateStage { name } => {
                write!(f, "stage `{name}` registered twice")
            }
            EngineError::UnknownDependency { stage, dep } => {
                write!(f, "stage `{stage}` depends on unknown stage `{dep}`")
            }
            EngineError::Cycle { stages } => {
                write!(f, "dependency cycle among stages {stages:?}")
            }
            EngineError::MissingArtifact { stage, dep } => {
                write!(
                    f,
                    "stage `{stage}` needs artifact `{dep}`, which is not available"
                )
            }
            EngineError::Stage { stage, message } => {
                write!(f, "stage `{stage}` failed: {message}")
            }
            EngineError::StagePanicked { stage, message } => {
                write!(f, "stage `{stage}` panicked: {message}")
            }
            EngineError::StageTimedOut { stage, budget_ms } => {
                write!(
                    f,
                    "stage `{stage}` exceeded its {budget_ms} ms budget and was declared lost"
                )
            }
            EngineError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<CheckpointError> for EngineError {
    fn from(e: CheckpointError) -> Self {
        EngineError::Checkpoint(e)
    }
}
