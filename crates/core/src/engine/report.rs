//! Per-stage and per-run instrumentation reports.

use std::time::Duration;

use towerlens_obs::SpanEvent;

use super::stage::Card;

/// How a stage was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageStatus {
    /// Computed in this run.
    Ran,
    /// Reloaded from a checkpoint.
    Cached,
    /// Not executed: every consumer of its artifact was satisfied
    /// from checkpoints.
    Skipped,
    /// Executed but did not produce an artifact: the stage panicked,
    /// or it errored and is [`super::Stage::optional`].
    Failed,
    /// Not executed because a stage it (transitively) depends on
    /// failed.
    Pruned,
}

impl StageStatus {
    /// Lower-case label (`ran` / `cached` / `skipped` / `failed` /
    /// `pruned`).
    pub fn label(self) -> &'static str {
        match self {
            StageStatus::Ran => "ran",
            StageStatus::Cached => "cached",
            StageStatus::Skipped => "skipped",
            StageStatus::Failed => "failed",
            StageStatus::Pruned => "pruned",
        }
    }
}

impl std::fmt::Display for StageStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What happened to one stage in one run.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// The stage name.
    pub name: &'static str,
    /// The wave (topological level) the stage was scheduled in.
    pub wave: usize,
    /// How the stage was satisfied.
    pub status: StageStatus,
    /// Offset from run start to when work on this stage began (the
    /// checkpoint probe for [`StageStatus::Cached`] stages, the
    /// scheduling point for stages that did no work).
    pub start: Duration,
    /// Wall time: compute + checkpoint write for [`StageStatus::Ran`],
    /// checkpoint read for [`StageStatus::Cached`], zero for
    /// [`StageStatus::Skipped`].
    pub wall: Duration,
    /// Input/output cardinalities (restored from the checkpoint
    /// header for cached stages).
    pub cards: Vec<Card>,
    /// The rendered failure, for [`StageStatus::Failed`] stages.
    pub error: Option<String>,
    /// How many execution attempts the stage consumed: 1 for a clean
    /// run, +1 per supervised retry (compute, checkpoint probe, or
    /// checkpoint save), 0 for stages that did no work (skipped /
    /// pruned).
    pub attempts: u32,
    /// Whether the watchdog declared this stage lost after it overran
    /// its supervised wall-time budget.
    pub timed_out: bool,
    /// Whether the supervisor's circuit breaker opened on this stage
    /// (an optional stage that kept flapping stopped retrying early).
    pub breaker_opened: bool,
}

/// The full instrumentation record of one graph run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-stage reports, in graph registration order.
    pub stages: Vec<StageReport>,
    /// End-to-end wall time of the run.
    pub total: Duration,
    /// Non-fatal conditions the run recovered from (e.g. a corrupt
    /// checkpoint that fell back to recompute).
    pub warnings: Vec<String>,
}

impl RunReport {
    /// The report of a stage, by name.
    pub fn stage(&self, name: &str) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Stage names with a given status, in registration order.
    pub fn with_status(&self, status: StageStatus) -> Vec<&'static str> {
        self.stages
            .iter()
            .filter(|s| s.status == status)
            .map(|s| s.name)
            .collect()
    }

    /// Whether any stage failed (or was pruned behind a failure).
    pub fn degraded(&self) -> bool {
        self.stages
            .iter()
            .any(|s| matches!(s.status, StageStatus::Failed | StageStatus::Pruned))
    }

    /// The run as a structured span log, one [`SpanEvent`] per stage
    /// in registration order. The report is the single source of
    /// truth; spans are a projection of it, so the event log can
    /// never disagree with the table or the JSON.
    pub fn spans(&self) -> Vec<SpanEvent> {
        self.stages
            .iter()
            .map(|s| {
                let start_us = s.start.as_micros() as u64;
                SpanEvent {
                    name: s.name.to_string(),
                    wave: s.wave as u64,
                    status: s.status.label().to_string(),
                    start_us,
                    end_us: start_us + s.wall.as_micros() as u64,
                    cards: s
                        .cards
                        .iter()
                        .map(|c| (c.label.to_string(), c.value))
                        .collect(),
                    error: s.error.clone(),
                    attempts: u64::from(s.attempts),
                }
            })
            .collect()
    }

    /// Feeds the run into a metrics registry: one
    /// `core.engine.stages_<status>` counter increment per stage, one
    /// `core.engine.stage.<name>` timer observation per stage that did
    /// work (ran or cached), and a `core.engine.runs` counter plus
    /// `core.engine.total` timer per run. Supervision activity feeds
    /// three more counters — `core.engine.stage_retries_total`,
    /// `core.engine.stage_timeouts_total`, and
    /// `core.engine.breaker_open_total` — which are registered (at
    /// zero) even on quiet runs so metric dumps keep a stable key set.
    /// The engine runner calls this against the
    /// [`towerlens_obs::global`] registry for every run.
    pub fn feed_registry(&self, registry: &towerlens_obs::Registry) {
        registry.counter("core.engine.runs").inc();
        registry.timer("core.engine.total").observe(self.total);
        let retries: u64 = self
            .stages
            .iter()
            .map(|s| u64::from(s.attempts.saturating_sub(1)))
            .sum();
        registry
            .counter("core.engine.stage_retries_total")
            .add(retries);
        let timeouts = self.stages.iter().filter(|s| s.timed_out).count() as u64;
        registry
            .counter("core.engine.stage_timeouts_total")
            .add(timeouts);
        let breakers = self.stages.iter().filter(|s| s.breaker_opened).count() as u64;
        registry
            .counter("core.engine.breaker_open_total")
            .add(breakers);
        for s in &self.stages {
            match s.status {
                StageStatus::Ran => registry.counter("core.engine.stages_ran").inc(),
                StageStatus::Cached => registry.counter("core.engine.stages_cached").inc(),
                StageStatus::Skipped => registry.counter("core.engine.stages_skipped").inc(),
                StageStatus::Failed => registry.counter("core.engine.stages_failed").inc(),
                StageStatus::Pruned => registry.counter("core.engine.stages_pruned").inc(),
            }
            if matches!(s.status, StageStatus::Ran | StageStatus::Cached) {
                registry
                    .timer(&format!("core.engine.stage.{}", s.name))
                    .observe(s.wall);
            }
        }
    }

    /// A fixed-width human table, one row per stage plus a total row.
    pub fn render_table(&self) -> String {
        let name_w = self
            .stages
            .iter()
            .map(|s| s.name.len())
            .chain(["stage".len()])
            .max()
            .unwrap_or(5);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<name_w$}  wave  status   {:>10}  cards\n",
            "stage", "wall"
        ));
        for s in &self.stages {
            let mut cards = s
                .cards
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(" ");
            if s.attempts > 1 {
                if !cards.is_empty() {
                    cards.push(' ');
                }
                cards.push_str(&format!("attempts={}", s.attempts));
            }
            if let Some(error) = &s.error {
                if !cards.is_empty() {
                    cards.push(' ');
                }
                cards.push_str(&format!("[{error}]"));
            }
            out.push_str(&format!(
                "{:<name_w$}  {:>4}  {:<7}  {:>8.2}ms  {}\n",
                s.name,
                s.wave,
                s.status.label(),
                s.wall.as_secs_f64() * 1e3,
                cards
            ));
        }
        out.push_str(&format!(
            "{:<name_w$}        total    {:>8.2}ms\n",
            "",
            self.total.as_secs_f64() * 1e3
        ));
        for w in &self.warnings {
            out.push_str(&format!("warning: {w}\n"));
        }
        out
    }

    /// The report as a JSON object (hand-rolled; stage names and card
    /// labels are plain ASCII identifiers).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"total_ms\":");
        out.push_str(&format!(
            "{:.3},\"stages\":[",
            self.total.as_secs_f64() * 1e3
        ));
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"wave\":{},\"status\":\"{}\",\"wall_ms\":{:.3},\"attempts\":{},\"cards\":{{",
                json_escape(s.name),
                s.wave,
                s.status.label(),
                s.wall.as_secs_f64() * 1e3,
                s.attempts
            ));
            for (j, c) in s.cards.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", json_escape(&c.label), c.value));
            }
            out.push('}');
            if s.timed_out {
                out.push_str(",\"timed_out\":true");
            }
            if s.breaker_opened {
                out.push_str(",\"breaker_opened\":true");
            }
            if let Some(error) = &s.error {
                out.push_str(&format!(",\"error\":\"{}\"", json_escape(error)));
            }
            out.push('}');
        }
        out.push_str("],\"warnings\":[");
        for (i, w) in self.warnings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", json_escape(w)));
        }
        out.push_str("]}");
        out
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            stages: vec![
                StageReport {
                    name: "city",
                    wave: 0,
                    status: StageStatus::Cached,
                    start: Duration::from_micros(100),
                    wall: Duration::from_micros(1_500),
                    cards: vec![Card::new("towers", 120)],
                    error: None,
                    attempts: 1,
                    timed_out: false,
                    breaker_opened: false,
                },
                StageReport {
                    name: "cluster",
                    wave: 1,
                    status: StageStatus::Ran,
                    start: Duration::from_micros(1_700),
                    wall: Duration::from_millis(12),
                    cards: vec![Card::new("k", 5), Card::new("vectors", 118)],
                    error: None,
                    attempts: 1,
                    timed_out: false,
                    breaker_opened: false,
                },
            ],
            total: Duration::from_millis(14),
            warnings: Vec::new(),
        }
    }

    fn degraded() -> RunReport {
        let mut r = sample();
        r.stages[1].status = StageStatus::Failed;
        r.stages[1].error = Some("stage `cluster` panicked: boom".into());
        r.stages.push(StageReport {
            name: "label",
            wave: 2,
            status: StageStatus::Pruned,
            start: Duration::from_millis(13),
            wall: Duration::ZERO,
            cards: Vec::new(),
            error: None,
            attempts: 0,
            timed_out: false,
            breaker_opened: false,
        });
        r.warnings
            .push("checkpoint for stage `city` is unusable; recomputing".into());
        r
    }

    /// A run that exercised the supervisor: a retried stage, a
    /// watchdog timeout, and an opened circuit breaker.
    fn supervised() -> RunReport {
        let mut r = sample();
        r.stages[1].attempts = 3;
        r.stages.push(StageReport {
            name: "frequency",
            wave: 2,
            status: StageStatus::Failed,
            start: Duration::from_millis(13),
            wall: Duration::from_millis(2_000),
            cards: Vec::new(),
            error: Some(
                "stage `frequency` exceeded its 2000 ms budget and was declared lost".into(),
            ),
            attempts: 1,
            timed_out: true,
            breaker_opened: false,
        });
        r.stages.push(StageReport {
            name: "label",
            wave: 2,
            status: StageStatus::Failed,
            start: Duration::from_millis(13),
            wall: Duration::from_millis(1),
            cards: Vec::new(),
            error: Some("stage `label` failed: transient: flaky".into()),
            attempts: 3,
            timed_out: false,
            breaker_opened: true,
        });
        r
    }

    #[test]
    fn table_lists_every_stage_and_total() {
        let table = sample().render_table();
        assert!(table.contains("city"));
        assert!(table.contains("cached"));
        assert!(table.contains("towers=120"));
        assert!(table.contains("total"));
        assert_eq!(table.lines().count(), 4); // header + 2 stages + total
    }

    #[test]
    fn json_is_well_formed() {
        let json = sample().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"name\":\"cluster\""));
        assert!(json.contains("\"status\":\"ran\""));
        assert!(json.contains("\"k\":5"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn lookup_and_status_filters() {
        let r = sample();
        assert_eq!(r.stage("city").unwrap().wave, 0);
        assert!(r.stage("nope").is_none());
        assert_eq!(r.with_status(StageStatus::Cached), vec!["city"]);
        assert_eq!(r.with_status(StageStatus::Skipped), Vec::<&str>::new());
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn spans_mirror_the_report() {
        let spans = sample().spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "city");
        assert_eq!(spans[0].status, "cached");
        assert_eq!(spans[0].start_us, 100);
        assert_eq!(spans[0].end_us, 1_600);
        assert_eq!(spans[0].cards, vec![("towers".to_string(), 120)]);
        assert_eq!(spans[1].status, "ran");
        assert_eq!(spans[1].duration_us(), 12_000);
        // A pruned stage still produces a (zero-width) span, so the
        // event log accounts for every stage in the graph.
        let degraded_spans = degraded().spans();
        let pruned = degraded_spans.iter().find(|s| s.name == "label").unwrap();
        assert_eq!(pruned.status, "pruned");
        assert_eq!(pruned.start_us, pruned.end_us);
        let failed = degraded_spans.iter().find(|s| s.name == "cluster").unwrap();
        assert_eq!(
            failed.error.as_deref(),
            Some("stage `cluster` panicked: boom")
        );
    }

    #[test]
    fn feed_registry_counts_statuses_and_times_work() {
        let registry = towerlens_obs::Registry::new();
        sample().feed_registry(&registry);
        degraded().feed_registry(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("core.engine.runs"), 2);
        assert_eq!(snap.counter("core.engine.stages_cached"), 2);
        assert_eq!(snap.counter("core.engine.stages_ran"), 1);
        assert_eq!(snap.counter("core.engine.stages_failed"), 1);
        assert_eq!(snap.counter("core.engine.stages_pruned"), 1);
        assert_eq!(snap.counter("core.engine.stages_skipped"), 0);
        // Per-stage timers exist only for stages that did work.
        assert_eq!(snap.timers["core.engine.stage.city"].count, 2);
        assert_eq!(snap.timers["core.engine.stage.cluster"].count, 1);
        assert!(!snap.timers.contains_key("core.engine.stage.label"));
        assert_eq!(snap.timers["core.engine.total"].count, 2);
    }

    #[test]
    fn supervision_counters_register_even_when_quiet() {
        let registry = towerlens_obs::Registry::new();
        sample().feed_registry(&registry);
        let quiet = registry.snapshot();
        for name in [
            "core.engine.stage_retries_total",
            "core.engine.stage_timeouts_total",
            "core.engine.breaker_open_total",
        ] {
            assert!(quiet.counters.contains_key(name), "missing {name}");
            assert_eq!(quiet.counter(name), 0, "{name} nonzero on a quiet run");
        }
    }

    #[test]
    fn supervision_activity_feeds_counters_and_json() {
        let registry = towerlens_obs::Registry::new();
        supervised().feed_registry(&registry);
        let snap = registry.snapshot();
        // cluster: 3 attempts = 2 retries; label: 3 attempts = 2 more.
        assert_eq!(snap.counter("core.engine.stage_retries_total"), 4);
        assert_eq!(snap.counter("core.engine.stage_timeouts_total"), 1);
        assert_eq!(snap.counter("core.engine.breaker_open_total"), 1);

        let json = supervised().to_json();
        assert!(json.contains("\"attempts\":3"));
        assert!(json.contains("\"timed_out\":true"));
        assert!(json.contains("\"breaker_opened\":true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        let table = supervised().render_table();
        assert!(table.contains("attempts=3"));
        // Span events carry the attempt count through to the log.
        let spans = supervised().spans();
        assert_eq!(
            spans.iter().find(|s| s.name == "label").unwrap().attempts,
            3
        );
    }

    #[test]
    fn degraded_run_renders_failures_and_warnings() {
        let r = degraded();
        assert!(r.degraded());
        assert!(!sample().degraded());
        let table = r.render_table();
        assert!(table.contains("failed"));
        assert!(table.contains("pruned"));
        assert!(table.contains("panicked: boom"));
        assert!(table.contains("warning: checkpoint for stage `city`"));
        let json = r.to_json();
        assert!(json.contains("\"status\":\"failed\""));
        assert!(json.contains("\"status\":\"pruned\""));
        assert!(json.contains("\"error\":\"stage `cluster` panicked: boom\""));
        assert!(json.contains("\"warnings\":[\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(r.with_status(StageStatus::Failed), vec!["cluster"]);
        assert_eq!(r.with_status(StageStatus::Pruned), vec!["label"]);
    }
}
