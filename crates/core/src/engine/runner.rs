//! Graph validation, wave scheduling, and execution.

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use super::checkpoint::CheckpointStore;
use super::report::{RunReport, StageReport, StageStatus};
use super::stage::{Card, Stage, StageContext, StageOutput};
use super::EngineError;

/// A set of stages forming a dependency DAG, executed in topological
/// *waves*: all stages of a wave depend only on earlier waves and run
/// concurrently on scoped threads.
pub struct Graph<A> {
    stages: Vec<Box<dyn Stage<A>>>,
}

/// What a run produced: every completed stage's artifact (keyed by
/// stage name) plus the instrumentation report.
#[derive(Debug)]
pub struct RunOutcome<A> {
    /// Artifacts of all stages that ran or were reloaded from a
    /// checkpoint. Skipped stages have no entry.
    pub artifacts: HashMap<&'static str, A>,
    /// Per-stage timing, status, and cardinalities.
    pub report: RunReport,
}

impl<A> RunOutcome<A> {
    /// Removes and returns a stage's artifact.
    ///
    /// # Errors
    /// [`EngineError::MissingArtifact`] when the stage produced none
    /// (skipped) or it was already taken.
    pub fn take(&mut self, name: &str) -> Result<A, EngineError> {
        self.artifacts
            .remove(name)
            .ok_or_else(|| EngineError::MissingArtifact {
                stage: "<outcome>".to_string(),
                dep: name.to_string(),
            })
    }
}

impl<A> Default for Graph<A> {
    fn default() -> Self {
        Graph { stages: Vec::new() }
    }
}

impl<A: Send + Sync> Graph<A> {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a stage (builder style). Registration order is the
    /// report order and the tie-break order within a wave.
    pub fn add_stage(mut self, stage: impl Stage<A> + 'static) -> Self {
        self.stages.push(Box::new(stage));
        self
    }

    /// Registered stage names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// Checks name uniqueness and dependency resolution.
    ///
    /// # Errors
    /// [`EngineError::DuplicateStage`] or
    /// [`EngineError::UnknownDependency`].
    pub fn validate(&self) -> Result<(), EngineError> {
        let mut seen = HashSet::new();
        for s in &self.stages {
            if !seen.insert(s.name()) {
                return Err(EngineError::DuplicateStage {
                    name: s.name().to_string(),
                });
            }
        }
        for s in &self.stages {
            for &d in s.deps() {
                if !seen.contains(d) {
                    return Err(EngineError::UnknownDependency {
                        stage: s.name().to_string(),
                        dep: d.to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    /// The topological schedule: wave `i + 1` depends only on waves
    /// `0..=i`; stages within a wave are mutually independent and run
    /// concurrently. Deterministic (registration order within a
    /// wave), so tests can assert on it directly.
    ///
    /// # Errors
    /// Validation errors, plus [`EngineError::Cycle`] listing the
    /// unschedulable stages.
    pub fn waves(&self) -> Result<Vec<Vec<&'static str>>, EngineError> {
        self.validate()?;
        let mut done: HashSet<&'static str> = HashSet::new();
        let mut remaining: Vec<&dyn Stage<A>> = self.stages.iter().map(|b| b.as_ref()).collect();
        let mut waves = Vec::new();
        while !remaining.is_empty() {
            let (ready, rest): (Vec<_>, Vec<_>) = remaining
                .into_iter()
                .partition(|s| s.deps().iter().all(|d| done.contains(d)));
            if ready.is_empty() {
                return Err(EngineError::Cycle {
                    stages: rest.iter().map(|s| s.name().to_string()).collect(),
                });
            }
            let wave: Vec<&'static str> = ready.iter().map(|s| s.name()).collect();
            done.extend(wave.iter().copied());
            waves.push(wave);
            remaining = rest;
        }
        Ok(waves)
    }

    /// Runs the graph.
    ///
    /// Without a store, every stage executes ([`StageStatus::Ran`]).
    /// With a store, checkpointable stages whose artifact reloads
    /// under the store's fingerprint are [`StageStatus::Cached`], and
    /// stages whose artifact is then demanded by no executing stage
    /// are pruned ([`StageStatus::Skipped`]). Demand is traced
    /// backwards from the graph's sinks; a cached stage's
    /// dependencies are not demanded on its behalf.
    ///
    /// # Errors
    /// Scheduling errors, checkpoint I/O/corruption errors, and the
    /// first failing stage's error.
    pub fn run(&self, store: Option<&CheckpointStore>) -> Result<RunOutcome<A>, EngineError> {
        let started = Instant::now();
        let waves = self.waves()?;
        let index: HashMap<&'static str, usize> = self
            .stages
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name(), i))
            .collect();

        // Probe checkpoints up front: demand pruning needs the full
        // hit set before the first wave starts.
        let mut cached: HashMap<&'static str, (A, Vec<Card>, Duration)> = HashMap::new();
        if let Some(store) = store {
            for s in &self.stages {
                if let Some(codec) = s.codec() {
                    let probe_started = Instant::now();
                    if let Some((artifact, cards)) = store.load(s.name(), codec)? {
                        cached.insert(s.name(), (artifact, cards, probe_started.elapsed()));
                    }
                }
            }
        }

        // Backward demand trace from the sinks.
        let mut has_dependent: HashSet<&'static str> = HashSet::new();
        for s in &self.stages {
            has_dependent.extend(s.deps().iter().copied());
        }
        let mut demanded: HashSet<&'static str> = HashSet::new();
        let mut frontier: Vec<&'static str> = self
            .stages
            .iter()
            .map(|s| s.name())
            .filter(|n| !has_dependent.contains(n))
            .collect();
        while let Some(name) = frontier.pop() {
            if !demanded.insert(name) || cached.contains_key(name) {
                continue;
            }
            frontier.extend(self.stages[index[&name]].deps().iter().copied());
        }

        let mut artifacts: HashMap<&'static str, A> = HashMap::new();
        let mut reports: HashMap<&'static str, StageReport> = HashMap::new();
        for (w, wave) in waves.iter().enumerate() {
            let mut to_run: Vec<usize> = Vec::new();
            for &name in wave {
                if let Some((artifact, cards, load)) = cached.remove(name) {
                    artifacts.insert(name, artifact);
                    reports.insert(
                        name,
                        StageReport {
                            name,
                            wave: w,
                            status: StageStatus::Cached,
                            wall: load,
                            cards,
                        },
                    );
                } else if !demanded.contains(name) {
                    reports.insert(
                        name,
                        StageReport {
                            name,
                            wave: w,
                            status: StageStatus::Skipped,
                            wall: Duration::ZERO,
                            cards: Vec::new(),
                        },
                    );
                } else {
                    to_run.push(index[name]);
                }
            }

            let run_one = |i: usize,
                           artifacts: &HashMap<&'static str, A>|
             -> (usize, Result<StageOutput<A>, EngineError>, Duration) {
                let stage = &self.stages[i];
                let stage_started = Instant::now();
                let result = stage.run(&StageContext::new(stage.name(), artifacts));
                (i, result, stage_started.elapsed())
            };
            let results: Vec<(usize, Result<StageOutput<A>, EngineError>, Duration)> =
                if to_run.len() <= 1 {
                    // A single runnable stage executes inline: no
                    // thread spawn on the (common) sequential spine.
                    to_run.iter().map(|&i| run_one(i, &artifacts)).collect()
                } else {
                    let shared = &artifacts;
                    let run_one = &run_one;
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = to_run
                            .iter()
                            .map(|&i| scope.spawn(move || run_one(i, shared)))
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("stage thread panicked"))
                            .collect()
                    })
                };

            for (i, result, mut wall) in results {
                let output = result?;
                let stage = &self.stages[i];
                if let (Some(store), Some(codec)) = (store, stage.codec()) {
                    let save_started = Instant::now();
                    store.save(stage.name(), &output.cards, codec, &output.artifact)?;
                    wall += save_started.elapsed();
                }
                reports.insert(
                    stage.name(),
                    StageReport {
                        name: stage.name(),
                        wave: w,
                        status: StageStatus::Ran,
                        wall,
                        cards: output.cards,
                    },
                );
                artifacts.insert(stage.name(), output.artifact);
            }
        }

        let stages = self
            .stages
            .iter()
            .map(|s| reports.remove(s.name()).expect("every stage reported"))
            .collect();
        Ok(RunOutcome {
            artifacts,
            report: RunReport {
                stages,
                total: started.elapsed(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::checkpoint::BodyReader;
    use super::super::stage::{StageCodec, StageOutput};
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    type RunFn =
        Box<dyn Fn(&StageContext<'_, u64>) -> Result<StageOutput<u64>, EngineError> + Send + Sync>;

    /// A test stage built from closures.
    struct TestStage {
        name: &'static str,
        deps: &'static [&'static str],
        body: RunFn,
        checkpointed: bool,
    }

    impl TestStage {
        fn new(
            name: &'static str,
            deps: &'static [&'static str],
            body: impl Fn(&StageContext<'_, u64>) -> Result<StageOutput<u64>, EngineError>
                + Send
                + Sync
                + 'static,
        ) -> Self {
            TestStage {
                name,
                deps,
                body: Box::new(body),
                checkpointed: false,
            }
        }

        fn checkpointed(mut self) -> Self {
            self.checkpointed = true;
            self
        }
    }

    /// Codec for `u64` artifacts: one decimal line.
    struct U64Codec;

    impl StageCodec<u64> for U64Codec {
        fn encode(&self, artifact: &u64, out: &mut String) -> Result<(), String> {
            out.push_str(&format!("value {artifact}\n"));
            Ok(())
        }

        fn decode(&self, body: &mut BodyReader<'_>) -> Result<u64, String> {
            body.tagged("value")?
                .parse()
                .map_err(|_| "bad value".to_string())
        }
    }

    impl Stage<u64> for TestStage {
        fn name(&self) -> &'static str {
            self.name
        }
        fn deps(&self) -> &'static [&'static str] {
            self.deps
        }
        fn run(&self, ctx: &StageContext<'_, u64>) -> Result<StageOutput<u64>, EngineError> {
            (self.body)(ctx)
        }
        fn codec(&self) -> Option<&dyn StageCodec<u64>> {
            self.checkpointed.then_some(&U64Codec)
        }
    }

    fn constant(name: &'static str, deps: &'static [&'static str], v: u64) -> TestStage {
        TestStage::new(name, deps, move |_| Ok(StageOutput::new(v)))
    }

    #[test]
    fn waves_schedule_a_diamond() {
        let g = Graph::new()
            .add_stage(constant("a", &[], 1))
            .add_stage(constant("b", &["a"], 2))
            .add_stage(constant("c", &["a"], 3))
            .add_stage(constant("d", &["b", "c"], 4));
        assert_eq!(
            g.waves().unwrap(),
            vec![vec!["a"], vec!["b", "c"], vec!["d"]]
        );
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let g = Graph::new()
            .add_stage(constant("a", &[], 1))
            .add_stage(constant("a", &[], 2));
        assert!(matches!(
            g.waves(),
            Err(EngineError::DuplicateStage { name }) if name == "a"
        ));
    }

    #[test]
    fn unknown_dependency_is_rejected() {
        let g = Graph::new().add_stage(constant("a", &["ghost"], 1));
        assert!(matches!(
            g.waves(),
            Err(EngineError::UnknownDependency { dep, .. }) if dep == "ghost"
        ));
    }

    #[test]
    fn cycles_are_rejected() {
        let g = Graph::new()
            .add_stage(constant("a", &["b"], 1))
            .add_stage(constant("b", &["a"], 2));
        assert!(matches!(g.waves(), Err(EngineError::Cycle { stages }) if stages.len() == 2));
    }

    #[test]
    fn artifacts_flow_along_dependencies() {
        let g = Graph::new()
            .add_stage(constant("a", &[], 20))
            .add_stage(TestStage::new("b", &["a"], |ctx| {
                Ok(StageOutput::new(ctx.artifact("a")? * 2).with_card("doubled", 1))
            }));
        let mut outcome = g.run(None).unwrap();
        assert_eq!(outcome.take("b").unwrap(), 40);
        let report = outcome.report;
        assert_eq!(report.with_status(StageStatus::Ran).len(), 2);
        assert_eq!(report.stage("b").unwrap().cards[0].to_string(), "doubled=1");
    }

    #[test]
    fn undeclared_artifact_access_fails_typed() {
        let g = Graph::new().add_stage(TestStage::new("lone", &[], |ctx| {
            ctx.artifact("nothing")?;
            unreachable!()
        }));
        assert!(matches!(
            g.run(None),
            Err(EngineError::MissingArtifact { stage, dep }) if stage == "lone" && dep == "nothing"
        ));
    }

    #[test]
    fn stage_failure_carries_the_stage_name() {
        let g = Graph::new()
            .add_stage(constant("ok", &[], 1))
            .add_stage(TestStage::new(
                "boom",
                &["ok"],
                |ctx| Err(ctx.fail("kaput")),
            ));
        match g.run(None) {
            Err(EngineError::Stage { stage, message }) => {
                assert_eq!(stage, "boom");
                assert_eq!(message, "kaput");
            }
            other => panic!("expected stage failure, got {other:?}"),
        }
    }

    /// Independent stages of one wave must be *live concurrently*:
    /// each signals its arrival and then blocks until it has seen the
    /// other, with a generous timeout so a sequential runner fails
    /// the assertion rather than deadlocking.
    #[test]
    fn independent_stages_run_concurrently() {
        #[derive(Default)]
        struct Rendezvous {
            arrived: Mutex<Vec<&'static str>>,
            bell: Condvar,
        }
        let meet = Arc::new(Rendezvous::default());
        let stage = |name: &'static str, partner: &'static str| {
            let meet = Arc::clone(&meet);
            TestStage::new(name, &["src"], move |_| {
                let mut arrived = meet.arrived.lock().unwrap();
                arrived.push(name);
                meet.bell.notify_all();
                let deadline = std::time::Duration::from_secs(10);
                let (guard, timeout) = meet
                    .bell
                    .wait_timeout_while(arrived, deadline, |a| !a.contains(&partner))
                    .unwrap();
                drop(guard);
                Ok(StageOutput::new(u64::from(!timeout.timed_out())))
            })
        };
        let g = Graph::new()
            .add_stage(constant("src", &[], 0))
            .add_stage(stage("left", "right"))
            .add_stage(stage("right", "left"));
        let mut outcome = g.run(None).unwrap();
        assert_eq!(
            outcome.take("left").unwrap(),
            1,
            "left never saw right running"
        );
        assert_eq!(
            outcome.take("right").unwrap(),
            1,
            "right never saw left running"
        );
    }

    fn temp_store(tag: &str) -> CheckpointStore {
        let dir =
            std::env::temp_dir().join(format!("towerlens-runner-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::open(dir, 99).unwrap()
    }

    /// Builds `a → b → c` with `b` checkpointed, counting executions.
    fn counted_chain(counts: &Arc<[AtomicUsize; 3]>) -> Graph<u64> {
        let track = |i: usize| {
            let counts = Arc::clone(counts);
            move || counts[i].fetch_add(1, Ordering::SeqCst)
        };
        let (ta, tb, tc) = (track(0), track(1), track(2));
        Graph::new()
            .add_stage(TestStage::new("a", &[], move |_| {
                ta();
                Ok(StageOutput::new(5))
            }))
            .add_stage(
                TestStage::new("b", &["a"], move |ctx| {
                    tb();
                    Ok(StageOutput::new(ctx.artifact("a")? + 1).with_card("in", 5))
                })
                .checkpointed(),
            )
            .add_stage(TestStage::new("c", &["b"], move |ctx| {
                tc();
                Ok(StageOutput::new(ctx.artifact("b")? * 10))
            }))
    }

    #[test]
    fn resume_reloads_checkpoints_and_prunes_undemanded_upstream() {
        let store = temp_store("resume");
        let counts: Arc<[AtomicUsize; 3]> = Arc::new(Default::default());

        let mut first = counted_chain(&counts).run(Some(&store)).unwrap();
        assert_eq!(first.take("c").unwrap(), 60);
        assert_eq!(
            first.report.with_status(StageStatus::Ran),
            vec!["a", "b", "c"]
        );

        let mut second = counted_chain(&counts).run(Some(&store)).unwrap();
        assert_eq!(
            second.take("c").unwrap(),
            60,
            "resumed run changed the result"
        );
        let report = &second.report;
        assert_eq!(report.with_status(StageStatus::Cached), vec!["b"]);
        assert_eq!(report.with_status(StageStatus::Skipped), vec!["a"]);
        assert_eq!(report.with_status(StageStatus::Ran), vec!["c"]);
        // Cached stages keep their cards across the reload.
        assert_eq!(report.stage("b").unwrap().cards[0].to_string(), "in=5");
        let runs = |i: usize| counts[i].load(Ordering::SeqCst);
        assert_eq!((runs(0), runs(1), runs(2)), (1, 1, 2));
    }

    #[test]
    fn corrupt_checkpoint_surfaces_typed_error() {
        let store = temp_store("corrupt");
        let counts: Arc<[AtomicUsize; 3]> = Arc::new(Default::default());
        counted_chain(&counts).run(Some(&store)).unwrap();
        let path = store.path_of("b");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("value", "vlaue")).unwrap();
        assert!(matches!(
            counted_chain(&counts).run(Some(&store)),
            Err(EngineError::Checkpoint(
                super::super::CheckpointError::Corrupt { .. }
            ))
        ));
    }

    #[test]
    fn run_without_store_never_touches_disk_state() {
        let counts: Arc<[AtomicUsize; 3]> = Arc::new(Default::default());
        counted_chain(&counts).run(None).unwrap();
        counted_chain(&counts).run(None).unwrap();
        assert_eq!(counts[1].load(Ordering::SeqCst), 2);
    }
}
