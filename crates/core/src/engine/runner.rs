//! Graph validation, wave scheduling, and execution.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use super::checkpoint::{CheckpointError, CheckpointStore};
use super::report::{RunReport, StageReport, StageStatus};
use super::stage::{Card, Stage, StageContext, StageOutput};
use super::supervisor::Supervisor;
use super::EngineError;

/// Renders a panic payload — the common `&str`/`String` cases; other
/// payload types get a placeholder.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Fault-injection failpoint: panics inside the named stage when the
/// `TOWERLENS_FAULT_PANIC` environment variable names it. Lets
/// integration tests (and operators) exercise the panic-containment
/// path against the real study graph without a purpose-built broken
/// stage.
fn fault_panic(stage: &str) {
    if std::env::var("TOWERLENS_FAULT_PANIC").as_deref() == Ok(stage) {
        panic!("injected fault: TOWERLENS_FAULT_PANIC={stage}");
    }
}

/// Straggler failpoint: sleeps inside the named stage when
/// `TOWERLENS_FAULT_SLEEP=<stage>:<ms>` names it, so the watchdog's
/// deadline path can be exercised against the real graph.
fn fault_sleep(stage: &str) {
    if let Ok(spec) = std::env::var("TOWERLENS_FAULT_SLEEP") {
        if let Some((name, ms)) = spec.split_once(':') {
            if name == stage {
                if let Ok(ms) = ms.parse::<u64>() {
                    std::thread::sleep(Duration::from_millis(ms));
                }
            }
        }
    }
}

/// Crash failpoint: aborts the process immediately after the k-th
/// successful checkpoint save when `TOWERLENS_FAULT_KILL=<k>` is set.
/// This is the chaos harness's kill switch — the abort happens *after*
/// the save (and its fsync) completed, so exactly k durable
/// checkpoints survive the crash.
fn fault_kill_tick() {
    static SAVES: AtomicUsize = AtomicUsize::new(0);
    if let Ok(spec) = std::env::var("TOWERLENS_FAULT_KILL") {
        if let Ok(k) = spec.parse::<usize>() {
            if SAVES.fetch_add(1, Ordering::SeqCst) + 1 == k {
                eprintln!("injected crash: TOWERLENS_FAULT_KILL={k} (aborting after {k} checkpoint saves)");
                std::process::abort();
            }
        }
    }
}

/// What one stage execution attempt chain produced: the final
/// result plus the supervision bookkeeping the report needs.
struct StageRun<A> {
    index: usize,
    result: Result<StageOutput<A>, EngineError>,
    start: Duration,
    wall: Duration,
    attempts: u32,
    breaker_opened: bool,
}

/// Messages on the watchdog channel: a finished stage, or the
/// monitor thread declaring the wave's deadline blown.
enum WatchMsg<A> {
    Done(StageRun<A>),
    Expired,
}

/// A checkpoint probe hit, with the retry count it took to get it.
struct CachedProbe<A> {
    artifact: A,
    cards: Vec<Card>,
    start: Duration,
    wall: Duration,
    attempts: u32,
}

/// A set of stages forming a dependency DAG, executed in topological
/// *waves*: all stages of a wave depend only on earlier waves and run
/// concurrently on scoped threads.
pub struct Graph<A> {
    stages: Vec<Box<dyn Stage<A>>>,
}

/// What a run produced: every completed stage's artifact (keyed by
/// stage name) plus the instrumentation report.
#[derive(Debug)]
pub struct RunOutcome<A> {
    /// Artifacts of all stages that ran or were reloaded from a
    /// checkpoint. Skipped stages have no entry.
    pub artifacts: HashMap<&'static str, A>,
    /// Per-stage timing, status, and cardinalities.
    pub report: RunReport,
}

impl<A> RunOutcome<A> {
    /// Removes and returns a stage's artifact.
    ///
    /// # Errors
    /// [`EngineError::MissingArtifact`] when the stage produced none
    /// (skipped) or it was already taken.
    pub fn take(&mut self, name: &str) -> Result<A, EngineError> {
        self.artifacts
            .remove(name)
            .ok_or_else(|| EngineError::MissingArtifact {
                stage: "<outcome>".to_string(),
                dep: name.to_string(),
            })
    }
}

impl<A> Default for Graph<A> {
    fn default() -> Self {
        Graph { stages: Vec::new() }
    }
}

impl<A: Send + Sync> Graph<A> {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a stage (builder style). Registration order is the
    /// report order and the tie-break order within a wave.
    pub fn add_stage(mut self, stage: impl Stage<A> + 'static) -> Self {
        self.stages.push(Box::new(stage));
        self
    }

    /// Registered stage names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// Checks name uniqueness and dependency resolution.
    ///
    /// # Errors
    /// [`EngineError::DuplicateStage`] or
    /// [`EngineError::UnknownDependency`].
    pub fn validate(&self) -> Result<(), EngineError> {
        let mut seen = HashSet::new();
        for s in &self.stages {
            if !seen.insert(s.name()) {
                return Err(EngineError::DuplicateStage {
                    name: s.name().to_string(),
                });
            }
        }
        for s in &self.stages {
            for &d in s.deps() {
                if !seen.contains(d) {
                    return Err(EngineError::UnknownDependency {
                        stage: s.name().to_string(),
                        dep: d.to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    /// The topological schedule: wave `i + 1` depends only on waves
    /// `0..=i`; stages within a wave are mutually independent and run
    /// concurrently. Deterministic (registration order within a
    /// wave), so tests can assert on it directly.
    ///
    /// # Errors
    /// Validation errors, plus [`EngineError::Cycle`] listing the
    /// unschedulable stages.
    pub fn waves(&self) -> Result<Vec<Vec<&'static str>>, EngineError> {
        self.validate()?;
        let mut done: HashSet<&'static str> = HashSet::new();
        let mut remaining: Vec<&dyn Stage<A>> = self.stages.iter().map(|b| b.as_ref()).collect();
        let mut waves = Vec::new();
        while !remaining.is_empty() {
            let (ready, rest): (Vec<_>, Vec<_>) = remaining
                .into_iter()
                .partition(|s| s.deps().iter().all(|d| done.contains(d)));
            if ready.is_empty() {
                return Err(EngineError::Cycle {
                    stages: rest.iter().map(|s| s.name().to_string()).collect(),
                });
            }
            let wave: Vec<&'static str> = ready.iter().map(|s| s.name()).collect();
            done.extend(wave.iter().copied());
            waves.push(wave);
            remaining = rest;
        }
        Ok(waves)
    }

    /// Runs the graph.
    ///
    /// Without a store, every stage executes ([`StageStatus::Ran`]).
    /// With a store, checkpointable stages whose artifact reloads
    /// under the store's fingerprint are [`StageStatus::Cached`], and
    /// stages whose artifact is then demanded by no executing stage
    /// are pruned ([`StageStatus::Skipped`]). Demand is traced
    /// backwards from the graph's sinks; a cached stage's
    /// dependencies are not demanded on its behalf.
    ///
    /// A checkpoint file that exists but cannot be trusted (truncated,
    /// checksum mismatch, malformed) is *not* fatal: the stage
    /// recomputes (overwriting the bad file on save) and the run
    /// carries a warning in [`RunReport::warnings`]. Only checkpoint
    /// I/O errors abort.
    ///
    /// Stage failures are contained where the graph can survive them:
    /// a panic in any stage, or an error from a [`Stage::optional`]
    /// stage, marks that stage [`StageStatus::Failed`] (with the
    /// rendered error in its report), transitively prunes its
    /// dependents ([`StageStatus::Pruned`] — unless their artifact was
    /// already cached), and lets the rest of the run complete. An
    /// error from a non-optional stage still fails the run.
    ///
    /// # Errors
    /// Scheduling errors, checkpoint I/O errors, and the first failing
    /// non-optional stage's error.
    pub fn run(&self, store: Option<&CheckpointStore>) -> Result<RunOutcome<A>, EngineError> {
        self.run_with(store, &Supervisor::default())
    }

    /// As [`Graph::run`], under a [`Supervisor`]: transient failures
    /// (checkpoint I/O errors and stage errors raised via
    /// [`StageContext::fail_transient`]) are retried up to the
    /// supervisor's budget with deterministic seeded backoff; an
    /// optional per-stage wall-time budget is enforced by a watchdog
    /// monitor thread (an overrunning stage is declared lost with
    /// [`EngineError::StageTimedOut`], which degrades optional stages
    /// and fails the run for required ones); and a circuit breaker
    /// stops retrying a flapping optional stage after N consecutive
    /// failures. `Supervisor::default()` reproduces [`Graph::run`]
    /// exactly.
    ///
    /// The watchdog bounds when a stage's result is *declared lost*,
    /// not the worker thread's lifetime: a truly hung stage still
    /// holds its scoped thread until it returns (killing threads is
    /// unsound); process-level supervision is the chaos harness's
    /// job.
    ///
    /// # Errors
    /// As [`Graph::run`], plus [`EngineError::StageTimedOut`] for a
    /// required stage that blew its budget.
    pub fn run_with(
        &self,
        store: Option<&CheckpointStore>,
        supervisor: &Supervisor,
    ) -> Result<RunOutcome<A>, EngineError> {
        let started = Instant::now();
        let waves = self.waves()?;
        let index: HashMap<&'static str, usize> = self
            .stages
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name(), i))
            .collect();
        let mut warnings: Vec<String> = Vec::new();

        // Probe checkpoints up front: demand pruning needs the full
        // hit set before the first wave starts. A damaged file is a
        // cache miss with a warning, not a dead run; a transient I/O
        // error retries under the supervisor's budget before
        // aborting.
        let mut cached: HashMap<&'static str, CachedProbe<A>> = HashMap::new();
        let mut probe_retries: HashMap<&'static str, u32> = HashMap::new();
        if let Some(store) = store {
            for s in &self.stages {
                if let Some(codec) = s.codec() {
                    let probe_started = Instant::now();
                    let probe_offset = probe_started.duration_since(started);
                    let mut retries = 0u32;
                    let outcome = loop {
                        match store.load(s.name(), codec) {
                            Err(e @ CheckpointError::Io { .. })
                                if retries < supervisor.retry.retries =>
                            {
                                drop(e);
                                std::thread::sleep(supervisor.retry.delay(s.name(), retries));
                                retries += 1;
                            }
                            other => break other,
                        }
                    };
                    if retries > 0 {
                        probe_retries.insert(s.name(), retries);
                    }
                    match outcome {
                        Ok(Some((artifact, cards))) => {
                            cached.insert(
                                s.name(),
                                CachedProbe {
                                    artifact,
                                    cards,
                                    start: probe_offset,
                                    wall: probe_started.elapsed(),
                                    attempts: retries + 1,
                                },
                            );
                        }
                        Ok(None) => {}
                        Err(e @ CheckpointError::Io { .. }) => return Err(e.into()),
                        Err(e) => warnings.push(format!(
                            "checkpoint for stage `{}` is unusable ({e}); recomputing",
                            s.name()
                        )),
                    }
                }
            }
        }

        // Backward demand trace from the sinks.
        let mut has_dependent: HashSet<&'static str> = HashSet::new();
        for s in &self.stages {
            has_dependent.extend(s.deps().iter().copied());
        }
        let mut demanded: HashSet<&'static str> = HashSet::new();
        let mut frontier: Vec<&'static str> = self
            .stages
            .iter()
            .map(|s| s.name())
            .filter(|n| !has_dependent.contains(n))
            .collect();
        while let Some(name) = frontier.pop() {
            if !demanded.insert(name) || cached.contains_key(name) {
                continue;
            }
            frontier.extend(self.stages[index[&name]].deps().iter().copied());
        }

        let mut artifacts: HashMap<&'static str, A> = HashMap::new();
        let mut reports: HashMap<&'static str, StageReport> = HashMap::new();
        // Stages whose artifact will never materialize this run:
        // failed stages and everything pruned behind them.
        let mut unavailable: HashSet<&'static str> = HashSet::new();
        for (w, wave) in waves.iter().enumerate() {
            let wave_offset = started.elapsed();
            let mut to_run: Vec<usize> = Vec::new();
            for &name in wave {
                if let Some(probe) = cached.remove(name) {
                    // A cached artifact is usable even when a
                    // dependency failed — the checkpoint already holds
                    // the finished product.
                    artifacts.insert(name, probe.artifact);
                    reports.insert(
                        name,
                        StageReport {
                            name,
                            wave: w,
                            status: StageStatus::Cached,
                            start: probe.start,
                            wall: probe.wall,
                            cards: probe.cards,
                            error: None,
                            attempts: probe.attempts,
                            timed_out: false,
                            breaker_opened: false,
                        },
                    );
                } else if self.stages[index[name]]
                    .deps()
                    .iter()
                    .any(|d| unavailable.contains(d))
                {
                    unavailable.insert(name);
                    reports.insert(
                        name,
                        StageReport {
                            name,
                            wave: w,
                            status: StageStatus::Pruned,
                            start: wave_offset,
                            wall: Duration::ZERO,
                            cards: Vec::new(),
                            error: None,
                            attempts: 0,
                            timed_out: false,
                            breaker_opened: false,
                        },
                    );
                } else if !demanded.contains(name) {
                    reports.insert(
                        name,
                        StageReport {
                            name,
                            wave: w,
                            status: StageStatus::Skipped,
                            start: wave_offset,
                            wall: Duration::ZERO,
                            cards: Vec::new(),
                            error: None,
                            attempts: 0,
                            timed_out: false,
                            breaker_opened: false,
                        },
                    );
                } else {
                    to_run.push(index[name]);
                }
            }

            let run_one = |i: usize, artifacts: &HashMap<&'static str, A>| -> StageRun<A> {
                let stage = &self.stages[i];
                let name = stage.name();
                let stage_started = Instant::now();
                let stage_offset = stage_started.duration_since(started);
                let mut attempts: u32 = 0;
                let mut breaker_opened = false;
                let result = loop {
                    attempts += 1;
                    // Contain panics so one sick stage cannot take
                    // down its wave siblings (or the process).
                    let attempt = catch_unwind(AssertUnwindSafe(|| {
                        fault_sleep(name);
                        fault_panic(name);
                        stage.run(&StageContext::new(name, artifacts))
                    }))
                    .unwrap_or_else(|payload| {
                        Err(EngineError::StagePanicked {
                            stage: name.to_string(),
                            message: panic_message(payload),
                        })
                    });
                    match attempt {
                        Err(e) if e.is_transient() && attempts <= supervisor.retry.retries => {
                            // Circuit breaker: an optional stage that
                            // keeps flapping stops burning its retry
                            // budget — the graph degrades it instead.
                            if stage.optional() && attempts >= supervisor.breaker.threshold {
                                breaker_opened = true;
                                break Err(e);
                            }
                            std::thread::sleep(supervisor.retry.delay(name, attempts - 1));
                        }
                        other => break other,
                    }
                };
                StageRun {
                    index: i,
                    result,
                    start: stage_offset,
                    wall: stage_started.elapsed(),
                    attempts,
                    breaker_opened,
                }
            };
            let mut results: Vec<StageRun<A>> = if let Some(budget) = supervisor.stage_timeout {
                if to_run.is_empty() {
                    Vec::new()
                } else {
                    // Watchdog path: workers report completions over a
                    // channel; a monitor thread injects `Expired` when
                    // the wave's per-stage budget lapses, and every
                    // still-unfinished stage is declared lost. Late
                    // results are discarded (the scope still joins the
                    // stragglers before the wave commits).
                    let shared = &artifacts;
                    let run_one = &run_one;
                    std::thread::scope(|scope| {
                        let (tx, rx) = mpsc::channel::<WatchMsg<A>>();
                        for &i in &to_run {
                            let tx = tx.clone();
                            scope.spawn(move || {
                                let _ = tx.send(WatchMsg::Done(run_one(i, shared)));
                            });
                        }
                        let finished = Arc::new((Mutex::new(false), Condvar::new()));
                        {
                            let finished = Arc::clone(&finished);
                            let tx = tx.clone();
                            scope.spawn(move || {
                                let (flag, bell) = &*finished;
                                let guard = flag.lock().unwrap();
                                let (_guard, timeout) = bell
                                    .wait_timeout_while(guard, budget, |done| !*done)
                                    .unwrap();
                                if timeout.timed_out() {
                                    let _ = tx.send(WatchMsg::Expired);
                                }
                            });
                        }
                        drop(tx);
                        let mut results: Vec<StageRun<A>> = Vec::new();
                        let mut seen: HashSet<usize> = HashSet::new();
                        while seen.len() < to_run.len() {
                            match rx.recv() {
                                Ok(WatchMsg::Done(run)) => {
                                    seen.insert(run.index);
                                    results.push(run);
                                }
                                Ok(WatchMsg::Expired) => {
                                    for &i in &to_run {
                                        if !seen.contains(&i) {
                                            results.push(StageRun {
                                                index: i,
                                                result: Err(EngineError::StageTimedOut {
                                                    stage: self.stages[i].name().to_string(),
                                                    budget_ms: budget.as_millis() as u64,
                                                }),
                                                start: wave_offset,
                                                wall: budget,
                                                attempts: 1,
                                                breaker_opened: false,
                                            });
                                        }
                                    }
                                    break;
                                }
                                Err(_) => break,
                            }
                        }
                        // Release the monitor thread before the scope
                        // joins it.
                        let (flag, bell) = &*finished;
                        *flag.lock().unwrap() = true;
                        bell.notify_all();
                        results
                    })
                }
            } else if to_run.len() <= 1 {
                // A single runnable stage executes inline: no
                // thread spawn on the (common) sequential spine.
                to_run.iter().map(|&i| run_one(i, &artifacts)).collect()
            } else {
                let shared = &artifacts;
                let run_one = &run_one;
                std::thread::scope(|scope| {
                    let handles: Vec<_> = to_run
                        .iter()
                        .map(|&i| scope.spawn(move || run_one(i, shared)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("stage thread panicked"))
                        .collect()
                })
            };
            // Commit in registration order whatever order the wave's
            // threads finished in, so the first-error semantics stay
            // deterministic.
            results.sort_by_key(|r| r.index);

            for run in results {
                let StageRun {
                    index: i,
                    result,
                    start,
                    mut wall,
                    mut attempts,
                    breaker_opened,
                } = run;
                let stage = &self.stages[i];
                let name = stage.name();
                attempts += probe_retries.get(name).copied().unwrap_or(0);
                let timed_out = matches!(result, Err(EngineError::StageTimedOut { .. }));
                let output = match result {
                    Ok(output) => output,
                    Err(e) => {
                        let contained =
                            stage.optional() || matches!(e, EngineError::StagePanicked { .. });
                        if !contained {
                            return Err(e);
                        }
                        unavailable.insert(name);
                        reports.insert(
                            name,
                            StageReport {
                                name,
                                wave: w,
                                status: StageStatus::Failed,
                                start,
                                wall,
                                cards: Vec::new(),
                                error: Some(e.to_string()),
                                attempts,
                                timed_out,
                                breaker_opened,
                            },
                        );
                        continue;
                    }
                };
                if let (Some(store), Some(codec)) = (store, stage.codec()) {
                    let save_started = Instant::now();
                    let mut save_retries = 0u32;
                    loop {
                        match store.save(name, &output.cards, codec, &output.artifact) {
                            Ok(()) => break,
                            Err(e @ CheckpointError::Io { .. })
                                if save_retries < supervisor.retry.retries =>
                            {
                                drop(e);
                                std::thread::sleep(supervisor.retry.delay(name, save_retries));
                                save_retries += 1;
                                attempts += 1;
                            }
                            Err(e) => return Err(e.into()),
                        }
                    }
                    fault_kill_tick();
                    wall += save_started.elapsed();
                }
                reports.insert(
                    name,
                    StageReport {
                        name,
                        wave: w,
                        status: StageStatus::Ran,
                        start,
                        wall,
                        cards: output.cards,
                        error: None,
                        attempts,
                        timed_out: false,
                        breaker_opened: false,
                    },
                );
                artifacts.insert(name, output.artifact);
            }
        }

        let stages = self
            .stages
            .iter()
            .map(|s| reports.remove(s.name()).expect("every stage reported"))
            .collect();
        let report = RunReport {
            stages,
            total: started.elapsed(),
            warnings,
        };
        // Every run instruments the process-wide registry, so
        // `--metrics` and the bench harness see engine activity
        // without any caller-side plumbing.
        report.feed_registry(towerlens_obs::global());
        Ok(RunOutcome { artifacts, report })
    }
}

#[cfg(test)]
mod tests {
    use super::super::checkpoint::BodyReader;
    use super::super::stage::{StageCodec, StageOutput};
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    type RunFn =
        Box<dyn Fn(&StageContext<'_, u64>) -> Result<StageOutput<u64>, EngineError> + Send + Sync>;

    /// A test stage built from closures.
    struct TestStage {
        name: &'static str,
        deps: &'static [&'static str],
        body: RunFn,
        checkpointed: bool,
        is_optional: bool,
    }

    impl TestStage {
        fn new(
            name: &'static str,
            deps: &'static [&'static str],
            body: impl Fn(&StageContext<'_, u64>) -> Result<StageOutput<u64>, EngineError>
                + Send
                + Sync
                + 'static,
        ) -> Self {
            TestStage {
                name,
                deps,
                body: Box::new(body),
                checkpointed: false,
                is_optional: false,
            }
        }

        fn checkpointed(mut self) -> Self {
            self.checkpointed = true;
            self
        }

        fn optional(mut self) -> Self {
            self.is_optional = true;
            self
        }
    }

    /// Codec for `u64` artifacts: one decimal line.
    struct U64Codec;

    impl StageCodec<u64> for U64Codec {
        fn encode(&self, artifact: &u64, out: &mut String) -> Result<(), String> {
            out.push_str(&format!("value {artifact}\n"));
            Ok(())
        }

        fn decode(&self, body: &mut BodyReader<'_>) -> Result<u64, String> {
            body.tagged("value")?
                .parse()
                .map_err(|_| "bad value".to_string())
        }
    }

    impl Stage<u64> for TestStage {
        fn name(&self) -> &'static str {
            self.name
        }
        fn deps(&self) -> &'static [&'static str] {
            self.deps
        }
        fn run(&self, ctx: &StageContext<'_, u64>) -> Result<StageOutput<u64>, EngineError> {
            (self.body)(ctx)
        }
        fn codec(&self) -> Option<&dyn StageCodec<u64>> {
            self.checkpointed.then_some(&U64Codec)
        }
        fn optional(&self) -> bool {
            self.is_optional
        }
    }

    fn constant(name: &'static str, deps: &'static [&'static str], v: u64) -> TestStage {
        TestStage::new(name, deps, move |_| Ok(StageOutput::new(v)))
    }

    #[test]
    fn waves_schedule_a_diamond() {
        let g = Graph::new()
            .add_stage(constant("a", &[], 1))
            .add_stage(constant("b", &["a"], 2))
            .add_stage(constant("c", &["a"], 3))
            .add_stage(constant("d", &["b", "c"], 4));
        assert_eq!(
            g.waves().unwrap(),
            vec![vec!["a"], vec!["b", "c"], vec!["d"]]
        );
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let g = Graph::new()
            .add_stage(constant("a", &[], 1))
            .add_stage(constant("a", &[], 2));
        assert!(matches!(
            g.waves(),
            Err(EngineError::DuplicateStage { name }) if name == "a"
        ));
    }

    #[test]
    fn unknown_dependency_is_rejected() {
        let g = Graph::new().add_stage(constant("a", &["ghost"], 1));
        assert!(matches!(
            g.waves(),
            Err(EngineError::UnknownDependency { dep, .. }) if dep == "ghost"
        ));
    }

    #[test]
    fn cycles_are_rejected() {
        let g = Graph::new()
            .add_stage(constant("a", &["b"], 1))
            .add_stage(constant("b", &["a"], 2));
        assert!(matches!(g.waves(), Err(EngineError::Cycle { stages }) if stages.len() == 2));
    }

    #[test]
    fn artifacts_flow_along_dependencies() {
        let g = Graph::new()
            .add_stage(constant("a", &[], 20))
            .add_stage(TestStage::new("b", &["a"], |ctx| {
                Ok(StageOutput::new(ctx.artifact("a")? * 2).with_card("doubled", 1))
            }));
        let mut outcome = g.run(None).unwrap();
        assert_eq!(outcome.take("b").unwrap(), 40);
        let report = outcome.report;
        assert_eq!(report.with_status(StageStatus::Ran).len(), 2);
        assert_eq!(report.stage("b").unwrap().cards[0].to_string(), "doubled=1");
    }

    #[test]
    fn undeclared_artifact_access_fails_typed() {
        let g = Graph::new().add_stage(TestStage::new("lone", &[], |ctx| {
            ctx.artifact("nothing")?;
            unreachable!()
        }));
        assert!(matches!(
            g.run(None),
            Err(EngineError::MissingArtifact { stage, dep }) if stage == "lone" && dep == "nothing"
        ));
    }

    #[test]
    fn stage_failure_carries_the_stage_name() {
        let g = Graph::new()
            .add_stage(constant("ok", &[], 1))
            .add_stage(TestStage::new(
                "boom",
                &["ok"],
                |ctx| Err(ctx.fail("kaput")),
            ));
        match g.run(None) {
            Err(EngineError::Stage { stage, message }) => {
                assert_eq!(stage, "boom");
                assert_eq!(message, "kaput");
            }
            other => panic!("expected stage failure, got {other:?}"),
        }
    }

    /// Independent stages of one wave must be *live concurrently*:
    /// each signals its arrival and then blocks until it has seen the
    /// other, with a generous timeout so a sequential runner fails
    /// the assertion rather than deadlocking.
    #[test]
    fn independent_stages_run_concurrently() {
        #[derive(Default)]
        struct Rendezvous {
            arrived: Mutex<Vec<&'static str>>,
            bell: Condvar,
        }
        let meet = Arc::new(Rendezvous::default());
        let stage = |name: &'static str, partner: &'static str| {
            let meet = Arc::clone(&meet);
            TestStage::new(name, &["src"], move |_| {
                let mut arrived = meet.arrived.lock().unwrap();
                arrived.push(name);
                meet.bell.notify_all();
                let deadline = std::time::Duration::from_secs(10);
                let (guard, timeout) = meet
                    .bell
                    .wait_timeout_while(arrived, deadline, |a| !a.contains(&partner))
                    .unwrap();
                drop(guard);
                Ok(StageOutput::new(u64::from(!timeout.timed_out())))
            })
        };
        let g = Graph::new()
            .add_stage(constant("src", &[], 0))
            .add_stage(stage("left", "right"))
            .add_stage(stage("right", "left"));
        let mut outcome = g.run(None).unwrap();
        assert_eq!(
            outcome.take("left").unwrap(),
            1,
            "left never saw right running"
        );
        assert_eq!(
            outcome.take("right").unwrap(),
            1,
            "right never saw left running"
        );
    }

    fn temp_store(tag: &str) -> CheckpointStore {
        let dir =
            std::env::temp_dir().join(format!("towerlens-runner-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::open(dir, 99).unwrap()
    }

    /// Builds `a → b → c` with `b` checkpointed, counting executions.
    fn counted_chain(counts: &Arc<[AtomicUsize; 3]>) -> Graph<u64> {
        let track = |i: usize| {
            let counts = Arc::clone(counts);
            move || counts[i].fetch_add(1, Ordering::SeqCst)
        };
        let (ta, tb, tc) = (track(0), track(1), track(2));
        Graph::new()
            .add_stage(TestStage::new("a", &[], move |_| {
                ta();
                Ok(StageOutput::new(5))
            }))
            .add_stage(
                TestStage::new("b", &["a"], move |ctx| {
                    tb();
                    Ok(StageOutput::new(ctx.artifact("a")? + 1).with_card("in", 5))
                })
                .checkpointed(),
            )
            .add_stage(TestStage::new("c", &["b"], move |ctx| {
                tc();
                Ok(StageOutput::new(ctx.artifact("b")? * 10))
            }))
    }

    #[test]
    fn resume_reloads_checkpoints_and_prunes_undemanded_upstream() {
        let store = temp_store("resume");
        let counts: Arc<[AtomicUsize; 3]> = Arc::new(Default::default());

        let mut first = counted_chain(&counts).run(Some(&store)).unwrap();
        assert_eq!(first.take("c").unwrap(), 60);
        assert_eq!(
            first.report.with_status(StageStatus::Ran),
            vec!["a", "b", "c"]
        );

        let mut second = counted_chain(&counts).run(Some(&store)).unwrap();
        assert_eq!(
            second.take("c").unwrap(),
            60,
            "resumed run changed the result"
        );
        let report = &second.report;
        assert_eq!(report.with_status(StageStatus::Cached), vec!["b"]);
        assert_eq!(report.with_status(StageStatus::Skipped), vec!["a"]);
        assert_eq!(report.with_status(StageStatus::Ran), vec!["c"]);
        // Cached stages keep their cards across the reload.
        assert_eq!(report.stage("b").unwrap().cards[0].to_string(), "in=5");
        let runs = |i: usize| counts[i].load(Ordering::SeqCst);
        assert_eq!((runs(0), runs(1), runs(2)), (1, 1, 2));
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_recompute() {
        let store = temp_store("corrupt");
        let counts: Arc<[AtomicUsize; 3]> = Arc::new(Default::default());
        counted_chain(&counts).run(Some(&store)).unwrap();
        let path = store.path_of("b");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("value", "vlaue")).unwrap();

        // The damaged file is a warning and a recompute, not a dead
        // run — and the recompute overwrites it, so a third run caches
        // cleanly again.
        let mut second = counted_chain(&counts).run(Some(&store)).unwrap();
        assert_eq!(second.take("c").unwrap(), 60);
        let report = &second.report;
        assert_eq!(report.with_status(StageStatus::Ran), vec!["a", "b", "c"]);
        assert!(
            report.warnings.iter().any(|w| w.contains("stage `b`")),
            "missing warning: {:?}",
            report.warnings
        );

        let mut third = counted_chain(&counts).run(Some(&store)).unwrap();
        assert_eq!(third.take("c").unwrap(), 60);
        assert!(third.report.warnings.is_empty());
        assert_eq!(third.report.with_status(StageStatus::Cached), vec!["b"]);
    }

    type Damage = fn(&std::path::Path);

    #[test]
    fn damaged_checkpoints_fall_back_to_recompute() {
        let damage: [(&str, Damage); 3] = [
            ("truncated", |p| {
                let f = std::fs::OpenOptions::new().write(true).open(p).unwrap();
                let len = f.metadata().unwrap().len();
                f.set_len(len / 2).unwrap();
            }),
            ("flipped", |p| {
                let text = std::fs::read_to_string(p).unwrap();
                std::fs::write(p, text.replace("value 6", "value 7")).unwrap();
            }),
            ("empty", |p| std::fs::write(p, "").unwrap()),
        ];
        for (tag, hurt) in damage {
            let store = temp_store(&format!("damage-{tag}"));
            let counts: Arc<[AtomicUsize; 3]> = Arc::new(Default::default());
            counted_chain(&counts).run(Some(&store)).unwrap();
            hurt(&store.path_of("b"));
            let mut again = counted_chain(&counts).run(Some(&store)).unwrap();
            assert_eq!(again.take("c").unwrap(), 60, "{tag}: wrong result");
            assert!(!again.report.warnings.is_empty(), "{tag}: no warning");
            assert_eq!(
                counts[1].load(Ordering::SeqCst),
                2,
                "{tag}: b was not recomputed"
            );
        }
    }

    #[test]
    fn panicking_stage_fails_and_prunes_dependents() {
        let g = Graph::new()
            .add_stage(constant("a", &[], 1))
            .add_stage(TestStage::new("b", &["a"], |_| panic!("boom {}", 7)))
            .add_stage(TestStage::new("c", &["b"], |ctx| {
                Ok(StageOutput::new(ctx.artifact("b")? + 1))
            }))
            .add_stage(TestStage::new("d", &["a"], |ctx| {
                Ok(StageOutput::new(ctx.artifact("a")? + 10))
            }));
        let mut outcome = g.run(None).unwrap();
        let report = &outcome.report;
        assert!(report.degraded());
        assert_eq!(report.with_status(StageStatus::Failed), vec!["b"]);
        assert_eq!(report.with_status(StageStatus::Pruned), vec!["c"]);
        assert_eq!(report.with_status(StageStatus::Ran), vec!["a", "d"]);
        let err = report.stage("b").unwrap().error.as_deref().unwrap();
        assert!(err.contains("panicked") && err.contains("boom 7"), "{err}");
        // Sibling work survived the panic; the dead branch yields no
        // artifact.
        assert_eq!(outcome.take("d").unwrap(), 11);
        assert!(outcome.take("b").is_err());
        assert!(outcome.take("c").is_err());
    }

    #[test]
    fn optional_stage_error_degrades_instead_of_aborting() {
        let g = Graph::new()
            .add_stage(constant("a", &[], 1))
            .add_stage(TestStage::new("b", &["a"], |ctx| Err(ctx.fail("no data"))).optional())
            .add_stage(TestStage::new("c", &["b"], |ctx| {
                Ok(StageOutput::new(*ctx.artifact("b")?))
            }))
            .add_stage(TestStage::new("d", &["c"], |ctx| {
                Ok(StageOutput::new(*ctx.artifact("c")?))
            }));
        let outcome = g.run(None).unwrap();
        let report = &outcome.report;
        assert_eq!(report.with_status(StageStatus::Failed), vec!["b"]);
        // Pruning is transitive: d never had a chance either.
        assert_eq!(report.with_status(StageStatus::Pruned), vec!["c", "d"]);
        assert_eq!(
            report.stage("b").unwrap().error.as_deref(),
            Some("stage `b` failed: no data")
        );
    }

    #[test]
    fn run_without_store_never_touches_disk_state() {
        let counts: Arc<[AtomicUsize; 3]> = Arc::new(Default::default());
        counted_chain(&counts).run(None).unwrap();
        counted_chain(&counts).run(None).unwrap();
        assert_eq!(counts[1].load(Ordering::SeqCst), 2);
    }

    use super::super::supervisor::IoFaultInjector;

    /// A supervisor whose backoff unit is tiny, so retry tests spend
    /// microseconds sleeping instead of the production 25 ms base.
    fn fast_supervisor(retries: u32, stage_timeout: Option<Duration>) -> Supervisor {
        let mut sup = Supervisor::new(retries, stage_timeout);
        sup.retry.base = Duration::from_micros(50);
        sup
    }

    #[test]
    fn transient_failures_retry_to_success() {
        let tries = Arc::new(AtomicUsize::new(0));
        let t = Arc::clone(&tries);
        let g = Graph::new().add_stage(TestStage::new("flaky", &[], move |ctx| {
            if t.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(ctx.fail_transient("blip"))
            } else {
                Ok(StageOutput::new(7))
            }
        }));
        let mut outcome = g.run_with(None, &fast_supervisor(3, None)).unwrap();
        assert_eq!(outcome.take("flaky").unwrap(), 7);
        let report = outcome.report.stage("flaky").unwrap();
        assert_eq!(report.status, StageStatus::Ran);
        assert_eq!(report.attempts, 3);
        assert_eq!(tries.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn retry_budget_exhaustion_surfaces_the_final_error() {
        let tries = Arc::new(AtomicUsize::new(0));
        let t = Arc::clone(&tries);
        let g = Graph::new().add_stage(TestStage::new("flaky", &[], move |ctx| {
            t.fetch_add(1, Ordering::SeqCst);
            Err(ctx.fail_transient("still down"))
        }));
        match g.run_with(None, &fast_supervisor(2, None)) {
            Err(EngineError::Stage { stage, message }) => {
                assert_eq!(stage, "flaky");
                assert!(message.contains("still down"));
            }
            other => panic!("expected stage failure, got {other:?}"),
        }
        // One initial try plus the full retry budget.
        assert_eq!(tries.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn permanent_errors_fail_fast_despite_retry_budget() {
        let tries = Arc::new(AtomicUsize::new(0));
        let t = Arc::clone(&tries);
        let g = Graph::new().add_stage(TestStage::new("broken", &[], move |ctx| {
            t.fetch_add(1, Ordering::SeqCst);
            Err(ctx.fail("bad data"))
        }));
        assert!(g.run_with(None, &fast_supervisor(5, None)).is_err());
        assert_eq!(tries.load(Ordering::SeqCst), 1, "permanent error retried");
    }

    #[test]
    fn breaker_opens_on_flapping_optional_stage() {
        let tries = Arc::new(AtomicUsize::new(0));
        let t = Arc::clone(&tries);
        let g = Graph::new()
            .add_stage(
                TestStage::new("flap", &[], move |ctx| {
                    t.fetch_add(1, Ordering::SeqCst);
                    Err(ctx.fail_transient("flap"))
                })
                .optional(),
            )
            .add_stage(TestStage::new("down", &["flap"], |ctx| {
                Ok(StageOutput::new(*ctx.artifact("flap")?))
            }));
        // Budget of 10 retries, but the breaker (threshold 3) opens
        // long before it is spent.
        let outcome = g.run_with(None, &fast_supervisor(10, None)).unwrap();
        let report = &outcome.report;
        assert_eq!(report.with_status(StageStatus::Failed), vec!["flap"]);
        assert_eq!(report.with_status(StageStatus::Pruned), vec!["down"]);
        let flap = report.stage("flap").unwrap();
        assert!(flap.breaker_opened);
        assert_eq!(flap.attempts, 3);
        assert_eq!(tries.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn watchdog_declares_overrunning_optional_stage_lost() {
        let g = Graph::new()
            .add_stage(constant("a", &[], 1))
            .add_stage(
                TestStage::new("slow", &["a"], |_| {
                    std::thread::sleep(Duration::from_millis(400));
                    Ok(StageOutput::new(9))
                })
                .optional(),
            )
            .add_stage(TestStage::new("behind", &["slow"], |ctx| {
                Ok(StageOutput::new(*ctx.artifact("slow")?))
            }))
            .add_stage(TestStage::new("sibling", &["a"], |ctx| {
                Ok(StageOutput::new(ctx.artifact("a")? + 1))
            }));
        let sup = Supervisor::new(0, Some(Duration::from_millis(40)));
        let mut outcome = g.run_with(None, &sup).unwrap();
        let report = &outcome.report;
        assert_eq!(report.with_status(StageStatus::Failed), vec!["slow"]);
        assert_eq!(report.with_status(StageStatus::Pruned), vec!["behind"]);
        let slow = report.stage("slow").unwrap();
        assert!(slow.timed_out);
        let err = slow.error.as_deref().unwrap();
        assert!(err.contains("40 ms budget"), "{err}");
        // The sibling's result committed; the straggler's was
        // discarded even though its thread eventually finished.
        assert_eq!(outcome.take("sibling").unwrap(), 2);
        assert!(outcome.take("slow").is_err());
    }

    #[test]
    fn required_stage_timeout_fails_the_run() {
        let g = Graph::new().add_stage(TestStage::new("slow", &[], |_| {
            std::thread::sleep(Duration::from_millis(300));
            Ok(StageOutput::new(1))
        }));
        let sup = Supervisor::new(0, Some(Duration::from_millis(30)));
        match g.run_with(None, &sup) {
            Err(EngineError::StageTimedOut { stage, budget_ms }) => {
                assert_eq!(stage, "slow");
                assert_eq!(budget_ms, 30);
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn fast_stages_run_unbothered_under_a_deadline() {
        let store = temp_store("deadline-quiet");
        let counts: Arc<[AtomicUsize; 3]> = Arc::new(Default::default());
        let sup = Supervisor::new(1, Some(Duration::from_secs(30)));
        let mut outcome = counted_chain(&counts).run_with(Some(&store), &sup).unwrap();
        assert_eq!(outcome.take("c").unwrap(), 60);
        assert_eq!(
            outcome.report.with_status(StageStatus::Ran),
            vec!["a", "b", "c"]
        );
        assert!(outcome.report.stages.iter().all(|s| !s.timed_out));
    }

    #[test]
    fn injected_save_faults_retry_within_budget() {
        let store =
            temp_store("io-retry").with_injector(IoFaultInjector::parse("save:b:2").unwrap());
        let counts: Arc<[AtomicUsize; 3]> = Arc::new(Default::default());
        let mut outcome = counted_chain(&counts)
            .run_with(Some(&store), &fast_supervisor(2, None))
            .unwrap();
        assert_eq!(outcome.take("c").unwrap(), 60);
        let b = outcome.report.stage("b").unwrap();
        assert_eq!(b.status, StageStatus::Ran);
        assert_eq!(b.attempts, 3, "1 compute + 2 save retries");
        // The checkpoint landed after the burst: a fresh run caches it.
        let second = counted_chain(&counts).run(Some(&store)).unwrap();
        assert_eq!(second.report.with_status(StageStatus::Cached), vec!["b"]);
    }

    #[test]
    fn injected_save_faults_beyond_budget_abort() {
        let store =
            temp_store("io-abort").with_injector(IoFaultInjector::parse("save:b:3").unwrap());
        let counts: Arc<[AtomicUsize; 3]> = Arc::new(Default::default());
        let err = counted_chain(&counts)
            .run_with(Some(&store), &fast_supervisor(2, None))
            .unwrap_err();
        assert!(
            matches!(err, EngineError::Checkpoint(CheckpointError::Io { .. })),
            "{err:?}"
        );
    }

    #[test]
    fn injected_load_faults_retry_during_probe() {
        let store = temp_store("probe-retry");
        let counts: Arc<[AtomicUsize; 3]> = Arc::new(Default::default());
        counted_chain(&counts).run(Some(&store)).unwrap();
        let store = store.with_injector(IoFaultInjector::parse("load:b:1").unwrap());
        let mut again = counted_chain(&counts)
            .run_with(Some(&store), &fast_supervisor(2, None))
            .unwrap();
        assert_eq!(again.take("c").unwrap(), 60);
        let b = again.report.stage("b").unwrap();
        assert_eq!(b.status, StageStatus::Cached);
        assert_eq!(b.attempts, 2, "one probe retry before the hit");
    }

    #[test]
    fn default_supervisor_reproduces_plain_run() {
        let store = temp_store("sup-default");
        let counts: Arc<[AtomicUsize; 3]> = Arc::new(Default::default());
        let mut via_run = counted_chain(&counts).run(Some(&store)).unwrap();
        let mut via_sup = counted_chain(&counts)
            .run_with(Some(&store), &Supervisor::default())
            .unwrap();
        assert_eq!(via_run.take("c").unwrap(), via_sup.take("c").unwrap());
        assert_eq!(via_sup.report.with_status(StageStatus::Cached), vec!["b"]);
    }
}
