//! Graph validation, wave scheduling, and execution.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use super::checkpoint::{CheckpointError, CheckpointStore};
use super::report::{RunReport, StageReport, StageStatus};
use super::stage::{Card, Stage, StageContext, StageOutput};
use super::EngineError;

/// Renders a panic payload — the common `&str`/`String` cases; other
/// payload types get a placeholder.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Fault-injection failpoint: panics inside the named stage when the
/// `TOWERLENS_FAULT_PANIC` environment variable names it. Lets
/// integration tests (and operators) exercise the panic-containment
/// path against the real study graph without a purpose-built broken
/// stage.
fn fault_panic(stage: &str) {
    if std::env::var("TOWERLENS_FAULT_PANIC").as_deref() == Ok(stage) {
        panic!("injected fault: TOWERLENS_FAULT_PANIC={stage}");
    }
}

/// A set of stages forming a dependency DAG, executed in topological
/// *waves*: all stages of a wave depend only on earlier waves and run
/// concurrently on scoped threads.
pub struct Graph<A> {
    stages: Vec<Box<dyn Stage<A>>>,
}

/// What a run produced: every completed stage's artifact (keyed by
/// stage name) plus the instrumentation report.
#[derive(Debug)]
pub struct RunOutcome<A> {
    /// Artifacts of all stages that ran or were reloaded from a
    /// checkpoint. Skipped stages have no entry.
    pub artifacts: HashMap<&'static str, A>,
    /// Per-stage timing, status, and cardinalities.
    pub report: RunReport,
}

impl<A> RunOutcome<A> {
    /// Removes and returns a stage's artifact.
    ///
    /// # Errors
    /// [`EngineError::MissingArtifact`] when the stage produced none
    /// (skipped) or it was already taken.
    pub fn take(&mut self, name: &str) -> Result<A, EngineError> {
        self.artifacts
            .remove(name)
            .ok_or_else(|| EngineError::MissingArtifact {
                stage: "<outcome>".to_string(),
                dep: name.to_string(),
            })
    }
}

impl<A> Default for Graph<A> {
    fn default() -> Self {
        Graph { stages: Vec::new() }
    }
}

impl<A: Send + Sync> Graph<A> {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a stage (builder style). Registration order is the
    /// report order and the tie-break order within a wave.
    pub fn add_stage(mut self, stage: impl Stage<A> + 'static) -> Self {
        self.stages.push(Box::new(stage));
        self
    }

    /// Registered stage names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// Checks name uniqueness and dependency resolution.
    ///
    /// # Errors
    /// [`EngineError::DuplicateStage`] or
    /// [`EngineError::UnknownDependency`].
    pub fn validate(&self) -> Result<(), EngineError> {
        let mut seen = HashSet::new();
        for s in &self.stages {
            if !seen.insert(s.name()) {
                return Err(EngineError::DuplicateStage {
                    name: s.name().to_string(),
                });
            }
        }
        for s in &self.stages {
            for &d in s.deps() {
                if !seen.contains(d) {
                    return Err(EngineError::UnknownDependency {
                        stage: s.name().to_string(),
                        dep: d.to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    /// The topological schedule: wave `i + 1` depends only on waves
    /// `0..=i`; stages within a wave are mutually independent and run
    /// concurrently. Deterministic (registration order within a
    /// wave), so tests can assert on it directly.
    ///
    /// # Errors
    /// Validation errors, plus [`EngineError::Cycle`] listing the
    /// unschedulable stages.
    pub fn waves(&self) -> Result<Vec<Vec<&'static str>>, EngineError> {
        self.validate()?;
        let mut done: HashSet<&'static str> = HashSet::new();
        let mut remaining: Vec<&dyn Stage<A>> = self.stages.iter().map(|b| b.as_ref()).collect();
        let mut waves = Vec::new();
        while !remaining.is_empty() {
            let (ready, rest): (Vec<_>, Vec<_>) = remaining
                .into_iter()
                .partition(|s| s.deps().iter().all(|d| done.contains(d)));
            if ready.is_empty() {
                return Err(EngineError::Cycle {
                    stages: rest.iter().map(|s| s.name().to_string()).collect(),
                });
            }
            let wave: Vec<&'static str> = ready.iter().map(|s| s.name()).collect();
            done.extend(wave.iter().copied());
            waves.push(wave);
            remaining = rest;
        }
        Ok(waves)
    }

    /// Runs the graph.
    ///
    /// Without a store, every stage executes ([`StageStatus::Ran`]).
    /// With a store, checkpointable stages whose artifact reloads
    /// under the store's fingerprint are [`StageStatus::Cached`], and
    /// stages whose artifact is then demanded by no executing stage
    /// are pruned ([`StageStatus::Skipped`]). Demand is traced
    /// backwards from the graph's sinks; a cached stage's
    /// dependencies are not demanded on its behalf.
    ///
    /// A checkpoint file that exists but cannot be trusted (truncated,
    /// checksum mismatch, malformed) is *not* fatal: the stage
    /// recomputes (overwriting the bad file on save) and the run
    /// carries a warning in [`RunReport::warnings`]. Only checkpoint
    /// I/O errors abort.
    ///
    /// Stage failures are contained where the graph can survive them:
    /// a panic in any stage, or an error from a [`Stage::optional`]
    /// stage, marks that stage [`StageStatus::Failed`] (with the
    /// rendered error in its report), transitively prunes its
    /// dependents ([`StageStatus::Pruned`] — unless their artifact was
    /// already cached), and lets the rest of the run complete. An
    /// error from a non-optional stage still fails the run.
    ///
    /// # Errors
    /// Scheduling errors, checkpoint I/O errors, and the first failing
    /// non-optional stage's error.
    pub fn run(&self, store: Option<&CheckpointStore>) -> Result<RunOutcome<A>, EngineError> {
        let started = Instant::now();
        let waves = self.waves()?;
        let index: HashMap<&'static str, usize> = self
            .stages
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name(), i))
            .collect();
        let mut warnings: Vec<String> = Vec::new();

        // Probe checkpoints up front: demand pruning needs the full
        // hit set before the first wave starts. A damaged file is a
        // cache miss with a warning, not a dead run.
        let mut cached: HashMap<&'static str, (A, Vec<Card>, Duration, Duration)> = HashMap::new();
        if let Some(store) = store {
            for s in &self.stages {
                if let Some(codec) = s.codec() {
                    let probe_started = Instant::now();
                    let probe_offset = probe_started.duration_since(started);
                    match store.load(s.name(), codec) {
                        Ok(Some((artifact, cards))) => {
                            cached.insert(
                                s.name(),
                                (artifact, cards, probe_offset, probe_started.elapsed()),
                            );
                        }
                        Ok(None) => {}
                        Err(e @ CheckpointError::Io { .. }) => return Err(e.into()),
                        Err(e) => warnings.push(format!(
                            "checkpoint for stage `{}` is unusable ({e}); recomputing",
                            s.name()
                        )),
                    }
                }
            }
        }

        // Backward demand trace from the sinks.
        let mut has_dependent: HashSet<&'static str> = HashSet::new();
        for s in &self.stages {
            has_dependent.extend(s.deps().iter().copied());
        }
        let mut demanded: HashSet<&'static str> = HashSet::new();
        let mut frontier: Vec<&'static str> = self
            .stages
            .iter()
            .map(|s| s.name())
            .filter(|n| !has_dependent.contains(n))
            .collect();
        while let Some(name) = frontier.pop() {
            if !demanded.insert(name) || cached.contains_key(name) {
                continue;
            }
            frontier.extend(self.stages[index[&name]].deps().iter().copied());
        }

        let mut artifacts: HashMap<&'static str, A> = HashMap::new();
        let mut reports: HashMap<&'static str, StageReport> = HashMap::new();
        // Stages whose artifact will never materialize this run:
        // failed stages and everything pruned behind them.
        let mut unavailable: HashSet<&'static str> = HashSet::new();
        for (w, wave) in waves.iter().enumerate() {
            let wave_offset = started.elapsed();
            let mut to_run: Vec<usize> = Vec::new();
            for &name in wave {
                if let Some((artifact, cards, probe_offset, load)) = cached.remove(name) {
                    // A cached artifact is usable even when a
                    // dependency failed — the checkpoint already holds
                    // the finished product.
                    artifacts.insert(name, artifact);
                    reports.insert(
                        name,
                        StageReport {
                            name,
                            wave: w,
                            status: StageStatus::Cached,
                            start: probe_offset,
                            wall: load,
                            cards,
                            error: None,
                        },
                    );
                } else if self.stages[index[name]]
                    .deps()
                    .iter()
                    .any(|d| unavailable.contains(d))
                {
                    unavailable.insert(name);
                    reports.insert(
                        name,
                        StageReport {
                            name,
                            wave: w,
                            status: StageStatus::Pruned,
                            start: wave_offset,
                            wall: Duration::ZERO,
                            cards: Vec::new(),
                            error: None,
                        },
                    );
                } else if !demanded.contains(name) {
                    reports.insert(
                        name,
                        StageReport {
                            name,
                            wave: w,
                            status: StageStatus::Skipped,
                            start: wave_offset,
                            wall: Duration::ZERO,
                            cards: Vec::new(),
                            error: None,
                        },
                    );
                } else {
                    to_run.push(index[name]);
                }
            }

            type StageResult<A> = (
                usize,
                Result<StageOutput<A>, EngineError>,
                Duration,
                Duration,
            );
            let run_one = |i: usize, artifacts: &HashMap<&'static str, A>| -> StageResult<A> {
                let stage = &self.stages[i];
                let stage_started = Instant::now();
                let stage_offset = stage_started.duration_since(started);
                // Contain panics so one sick stage cannot take down
                // its wave siblings (or the process).
                let result = catch_unwind(AssertUnwindSafe(|| {
                    fault_panic(stage.name());
                    stage.run(&StageContext::new(stage.name(), artifacts))
                }))
                .unwrap_or_else(|payload| {
                    Err(EngineError::StagePanicked {
                        stage: stage.name().to_string(),
                        message: panic_message(payload),
                    })
                });
                (i, result, stage_offset, stage_started.elapsed())
            };
            let results: Vec<StageResult<A>> = if to_run.len() <= 1 {
                // A single runnable stage executes inline: no
                // thread spawn on the (common) sequential spine.
                to_run.iter().map(|&i| run_one(i, &artifacts)).collect()
            } else {
                let shared = &artifacts;
                let run_one = &run_one;
                std::thread::scope(|scope| {
                    let handles: Vec<_> = to_run
                        .iter()
                        .map(|&i| scope.spawn(move || run_one(i, shared)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("stage thread panicked"))
                        .collect()
                })
            };

            for (i, result, start, mut wall) in results {
                let stage = &self.stages[i];
                let output = match result {
                    Ok(output) => output,
                    Err(e) => {
                        let contained =
                            stage.optional() || matches!(e, EngineError::StagePanicked { .. });
                        if !contained {
                            return Err(e);
                        }
                        unavailable.insert(stage.name());
                        reports.insert(
                            stage.name(),
                            StageReport {
                                name: stage.name(),
                                wave: w,
                                status: StageStatus::Failed,
                                start,
                                wall,
                                cards: Vec::new(),
                                error: Some(e.to_string()),
                            },
                        );
                        continue;
                    }
                };
                if let (Some(store), Some(codec)) = (store, stage.codec()) {
                    let save_started = Instant::now();
                    store.save(stage.name(), &output.cards, codec, &output.artifact)?;
                    wall += save_started.elapsed();
                }
                reports.insert(
                    stage.name(),
                    StageReport {
                        name: stage.name(),
                        wave: w,
                        status: StageStatus::Ran,
                        start,
                        wall,
                        cards: output.cards,
                        error: None,
                    },
                );
                artifacts.insert(stage.name(), output.artifact);
            }
        }

        let stages = self
            .stages
            .iter()
            .map(|s| reports.remove(s.name()).expect("every stage reported"))
            .collect();
        let report = RunReport {
            stages,
            total: started.elapsed(),
            warnings,
        };
        // Every run instruments the process-wide registry, so
        // `--metrics` and the bench harness see engine activity
        // without any caller-side plumbing.
        report.feed_registry(towerlens_obs::global());
        Ok(RunOutcome { artifacts, report })
    }
}

#[cfg(test)]
mod tests {
    use super::super::checkpoint::BodyReader;
    use super::super::stage::{StageCodec, StageOutput};
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    type RunFn =
        Box<dyn Fn(&StageContext<'_, u64>) -> Result<StageOutput<u64>, EngineError> + Send + Sync>;

    /// A test stage built from closures.
    struct TestStage {
        name: &'static str,
        deps: &'static [&'static str],
        body: RunFn,
        checkpointed: bool,
        is_optional: bool,
    }

    impl TestStage {
        fn new(
            name: &'static str,
            deps: &'static [&'static str],
            body: impl Fn(&StageContext<'_, u64>) -> Result<StageOutput<u64>, EngineError>
                + Send
                + Sync
                + 'static,
        ) -> Self {
            TestStage {
                name,
                deps,
                body: Box::new(body),
                checkpointed: false,
                is_optional: false,
            }
        }

        fn checkpointed(mut self) -> Self {
            self.checkpointed = true;
            self
        }

        fn optional(mut self) -> Self {
            self.is_optional = true;
            self
        }
    }

    /// Codec for `u64` artifacts: one decimal line.
    struct U64Codec;

    impl StageCodec<u64> for U64Codec {
        fn encode(&self, artifact: &u64, out: &mut String) -> Result<(), String> {
            out.push_str(&format!("value {artifact}\n"));
            Ok(())
        }

        fn decode(&self, body: &mut BodyReader<'_>) -> Result<u64, String> {
            body.tagged("value")?
                .parse()
                .map_err(|_| "bad value".to_string())
        }
    }

    impl Stage<u64> for TestStage {
        fn name(&self) -> &'static str {
            self.name
        }
        fn deps(&self) -> &'static [&'static str] {
            self.deps
        }
        fn run(&self, ctx: &StageContext<'_, u64>) -> Result<StageOutput<u64>, EngineError> {
            (self.body)(ctx)
        }
        fn codec(&self) -> Option<&dyn StageCodec<u64>> {
            self.checkpointed.then_some(&U64Codec)
        }
        fn optional(&self) -> bool {
            self.is_optional
        }
    }

    fn constant(name: &'static str, deps: &'static [&'static str], v: u64) -> TestStage {
        TestStage::new(name, deps, move |_| Ok(StageOutput::new(v)))
    }

    #[test]
    fn waves_schedule_a_diamond() {
        let g = Graph::new()
            .add_stage(constant("a", &[], 1))
            .add_stage(constant("b", &["a"], 2))
            .add_stage(constant("c", &["a"], 3))
            .add_stage(constant("d", &["b", "c"], 4));
        assert_eq!(
            g.waves().unwrap(),
            vec![vec!["a"], vec!["b", "c"], vec!["d"]]
        );
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let g = Graph::new()
            .add_stage(constant("a", &[], 1))
            .add_stage(constant("a", &[], 2));
        assert!(matches!(
            g.waves(),
            Err(EngineError::DuplicateStage { name }) if name == "a"
        ));
    }

    #[test]
    fn unknown_dependency_is_rejected() {
        let g = Graph::new().add_stage(constant("a", &["ghost"], 1));
        assert!(matches!(
            g.waves(),
            Err(EngineError::UnknownDependency { dep, .. }) if dep == "ghost"
        ));
    }

    #[test]
    fn cycles_are_rejected() {
        let g = Graph::new()
            .add_stage(constant("a", &["b"], 1))
            .add_stage(constant("b", &["a"], 2));
        assert!(matches!(g.waves(), Err(EngineError::Cycle { stages }) if stages.len() == 2));
    }

    #[test]
    fn artifacts_flow_along_dependencies() {
        let g = Graph::new()
            .add_stage(constant("a", &[], 20))
            .add_stage(TestStage::new("b", &["a"], |ctx| {
                Ok(StageOutput::new(ctx.artifact("a")? * 2).with_card("doubled", 1))
            }));
        let mut outcome = g.run(None).unwrap();
        assert_eq!(outcome.take("b").unwrap(), 40);
        let report = outcome.report;
        assert_eq!(report.with_status(StageStatus::Ran).len(), 2);
        assert_eq!(report.stage("b").unwrap().cards[0].to_string(), "doubled=1");
    }

    #[test]
    fn undeclared_artifact_access_fails_typed() {
        let g = Graph::new().add_stage(TestStage::new("lone", &[], |ctx| {
            ctx.artifact("nothing")?;
            unreachable!()
        }));
        assert!(matches!(
            g.run(None),
            Err(EngineError::MissingArtifact { stage, dep }) if stage == "lone" && dep == "nothing"
        ));
    }

    #[test]
    fn stage_failure_carries_the_stage_name() {
        let g = Graph::new()
            .add_stage(constant("ok", &[], 1))
            .add_stage(TestStage::new(
                "boom",
                &["ok"],
                |ctx| Err(ctx.fail("kaput")),
            ));
        match g.run(None) {
            Err(EngineError::Stage { stage, message }) => {
                assert_eq!(stage, "boom");
                assert_eq!(message, "kaput");
            }
            other => panic!("expected stage failure, got {other:?}"),
        }
    }

    /// Independent stages of one wave must be *live concurrently*:
    /// each signals its arrival and then blocks until it has seen the
    /// other, with a generous timeout so a sequential runner fails
    /// the assertion rather than deadlocking.
    #[test]
    fn independent_stages_run_concurrently() {
        #[derive(Default)]
        struct Rendezvous {
            arrived: Mutex<Vec<&'static str>>,
            bell: Condvar,
        }
        let meet = Arc::new(Rendezvous::default());
        let stage = |name: &'static str, partner: &'static str| {
            let meet = Arc::clone(&meet);
            TestStage::new(name, &["src"], move |_| {
                let mut arrived = meet.arrived.lock().unwrap();
                arrived.push(name);
                meet.bell.notify_all();
                let deadline = std::time::Duration::from_secs(10);
                let (guard, timeout) = meet
                    .bell
                    .wait_timeout_while(arrived, deadline, |a| !a.contains(&partner))
                    .unwrap();
                drop(guard);
                Ok(StageOutput::new(u64::from(!timeout.timed_out())))
            })
        };
        let g = Graph::new()
            .add_stage(constant("src", &[], 0))
            .add_stage(stage("left", "right"))
            .add_stage(stage("right", "left"));
        let mut outcome = g.run(None).unwrap();
        assert_eq!(
            outcome.take("left").unwrap(),
            1,
            "left never saw right running"
        );
        assert_eq!(
            outcome.take("right").unwrap(),
            1,
            "right never saw left running"
        );
    }

    fn temp_store(tag: &str) -> CheckpointStore {
        let dir =
            std::env::temp_dir().join(format!("towerlens-runner-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::open(dir, 99).unwrap()
    }

    /// Builds `a → b → c` with `b` checkpointed, counting executions.
    fn counted_chain(counts: &Arc<[AtomicUsize; 3]>) -> Graph<u64> {
        let track = |i: usize| {
            let counts = Arc::clone(counts);
            move || counts[i].fetch_add(1, Ordering::SeqCst)
        };
        let (ta, tb, tc) = (track(0), track(1), track(2));
        Graph::new()
            .add_stage(TestStage::new("a", &[], move |_| {
                ta();
                Ok(StageOutput::new(5))
            }))
            .add_stage(
                TestStage::new("b", &["a"], move |ctx| {
                    tb();
                    Ok(StageOutput::new(ctx.artifact("a")? + 1).with_card("in", 5))
                })
                .checkpointed(),
            )
            .add_stage(TestStage::new("c", &["b"], move |ctx| {
                tc();
                Ok(StageOutput::new(ctx.artifact("b")? * 10))
            }))
    }

    #[test]
    fn resume_reloads_checkpoints_and_prunes_undemanded_upstream() {
        let store = temp_store("resume");
        let counts: Arc<[AtomicUsize; 3]> = Arc::new(Default::default());

        let mut first = counted_chain(&counts).run(Some(&store)).unwrap();
        assert_eq!(first.take("c").unwrap(), 60);
        assert_eq!(
            first.report.with_status(StageStatus::Ran),
            vec!["a", "b", "c"]
        );

        let mut second = counted_chain(&counts).run(Some(&store)).unwrap();
        assert_eq!(
            second.take("c").unwrap(),
            60,
            "resumed run changed the result"
        );
        let report = &second.report;
        assert_eq!(report.with_status(StageStatus::Cached), vec!["b"]);
        assert_eq!(report.with_status(StageStatus::Skipped), vec!["a"]);
        assert_eq!(report.with_status(StageStatus::Ran), vec!["c"]);
        // Cached stages keep their cards across the reload.
        assert_eq!(report.stage("b").unwrap().cards[0].to_string(), "in=5");
        let runs = |i: usize| counts[i].load(Ordering::SeqCst);
        assert_eq!((runs(0), runs(1), runs(2)), (1, 1, 2));
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_recompute() {
        let store = temp_store("corrupt");
        let counts: Arc<[AtomicUsize; 3]> = Arc::new(Default::default());
        counted_chain(&counts).run(Some(&store)).unwrap();
        let path = store.path_of("b");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("value", "vlaue")).unwrap();

        // The damaged file is a warning and a recompute, not a dead
        // run — and the recompute overwrites it, so a third run caches
        // cleanly again.
        let mut second = counted_chain(&counts).run(Some(&store)).unwrap();
        assert_eq!(second.take("c").unwrap(), 60);
        let report = &second.report;
        assert_eq!(report.with_status(StageStatus::Ran), vec!["a", "b", "c"]);
        assert!(
            report.warnings.iter().any(|w| w.contains("stage `b`")),
            "missing warning: {:?}",
            report.warnings
        );

        let mut third = counted_chain(&counts).run(Some(&store)).unwrap();
        assert_eq!(third.take("c").unwrap(), 60);
        assert!(third.report.warnings.is_empty());
        assert_eq!(third.report.with_status(StageStatus::Cached), vec!["b"]);
    }

    type Damage = fn(&std::path::Path);

    #[test]
    fn damaged_checkpoints_fall_back_to_recompute() {
        let damage: [(&str, Damage); 3] = [
            ("truncated", |p| {
                let f = std::fs::OpenOptions::new().write(true).open(p).unwrap();
                let len = f.metadata().unwrap().len();
                f.set_len(len / 2).unwrap();
            }),
            ("flipped", |p| {
                let text = std::fs::read_to_string(p).unwrap();
                std::fs::write(p, text.replace("value 6", "value 7")).unwrap();
            }),
            ("empty", |p| std::fs::write(p, "").unwrap()),
        ];
        for (tag, hurt) in damage {
            let store = temp_store(&format!("damage-{tag}"));
            let counts: Arc<[AtomicUsize; 3]> = Arc::new(Default::default());
            counted_chain(&counts).run(Some(&store)).unwrap();
            hurt(&store.path_of("b"));
            let mut again = counted_chain(&counts).run(Some(&store)).unwrap();
            assert_eq!(again.take("c").unwrap(), 60, "{tag}: wrong result");
            assert!(!again.report.warnings.is_empty(), "{tag}: no warning");
            assert_eq!(
                counts[1].load(Ordering::SeqCst),
                2,
                "{tag}: b was not recomputed"
            );
        }
    }

    #[test]
    fn panicking_stage_fails_and_prunes_dependents() {
        let g = Graph::new()
            .add_stage(constant("a", &[], 1))
            .add_stage(TestStage::new("b", &["a"], |_| panic!("boom {}", 7)))
            .add_stage(TestStage::new("c", &["b"], |ctx| {
                Ok(StageOutput::new(ctx.artifact("b")? + 1))
            }))
            .add_stage(TestStage::new("d", &["a"], |ctx| {
                Ok(StageOutput::new(ctx.artifact("a")? + 10))
            }));
        let mut outcome = g.run(None).unwrap();
        let report = &outcome.report;
        assert!(report.degraded());
        assert_eq!(report.with_status(StageStatus::Failed), vec!["b"]);
        assert_eq!(report.with_status(StageStatus::Pruned), vec!["c"]);
        assert_eq!(report.with_status(StageStatus::Ran), vec!["a", "d"]);
        let err = report.stage("b").unwrap().error.as_deref().unwrap();
        assert!(err.contains("panicked") && err.contains("boom 7"), "{err}");
        // Sibling work survived the panic; the dead branch yields no
        // artifact.
        assert_eq!(outcome.take("d").unwrap(), 11);
        assert!(outcome.take("b").is_err());
        assert!(outcome.take("c").is_err());
    }

    #[test]
    fn optional_stage_error_degrades_instead_of_aborting() {
        let g = Graph::new()
            .add_stage(constant("a", &[], 1))
            .add_stage(TestStage::new("b", &["a"], |ctx| Err(ctx.fail("no data"))).optional())
            .add_stage(TestStage::new("c", &["b"], |ctx| {
                Ok(StageOutput::new(*ctx.artifact("b")?))
            }))
            .add_stage(TestStage::new("d", &["c"], |ctx| {
                Ok(StageOutput::new(*ctx.artifact("c")?))
            }));
        let outcome = g.run(None).unwrap();
        let report = &outcome.report;
        assert_eq!(report.with_status(StageStatus::Failed), vec!["b"]);
        // Pruning is transitive: d never had a chance either.
        assert_eq!(report.with_status(StageStatus::Pruned), vec!["c", "d"]);
        assert_eq!(
            report.stage("b").unwrap().error.as_deref(),
            Some("stage `b` failed: no data")
        );
    }

    #[test]
    fn run_without_store_never_touches_disk_state() {
        let counts: Arc<[AtomicUsize; 3]> = Arc::new(Default::default());
        counted_chain(&counts).run(None).unwrap();
        counted_chain(&counts).run(None).unwrap();
        assert_eq!(counts[1].load(Ordering::SeqCst), 2);
    }
}
