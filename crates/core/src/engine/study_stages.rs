//! The full-study pipeline expressed as a stage graph.
//!
//! ```text
//! wave 0   city
//! wave 1   synthesize            (city)
//! wave 2   vectorize             (synthesize)
//! wave 3   cluster               (vectorize)
//! wave 4   label | timedomain | frequency      — concurrent
//! wave 5   decompose             (city, vectorize, cluster, label, frequency)
//! ```
//!
//! Artifact keys are the stage names. The first four stages carry a
//! [`StageCodec`], so a run against a [`CheckpointStore`] persists the
//! expensive front of the pipeline (generation, synthesis,
//! vectorization, clustering) and a resume reloads it bit-identically.

use towerlens_city::city::{City, Tower};
use towerlens_city::config::CityConfig;
use towerlens_city::generate::generate;
use towerlens_city::geo::GeoPoint;
use towerlens_city::poi::{Poi, PoiIndex};
use towerlens_city::zone::{PoiKind, RegionKind, Zone};
use towerlens_cluster::dendrogram::{Clustering, Dendrogram, Merge};
use towerlens_cluster::validity::DbiPoint;
use towerlens_mobility::config::SynthConfig;
use towerlens_mobility::synth::synthesize_city;
use towerlens_opt::simplex::Solver;
use towerlens_pipeline::normalize::{normalize_matrix, NormalizedMatrix};
use towerlens_trace::time::TraceWindow;

use crate::decompose::{Decomposer, Decomposition};
use crate::freq::{
    cluster_feature_stats, features_of_goertzel_par, representative_towers, ClusterFeatureStats,
    TowerFeatures,
};
use crate::identifier::{IdentifiedPatterns, IdentifierConfig, PatternIdentifier};
use crate::labeling::{cluster_of_kind, label_clusters, GeoLabels};
use crate::study::StudyConfig;
use crate::timedomain::{cluster_series, cluster_time_stats, ClusterTimeStats};

use super::checkpoint::{decode_f64, decode_usize, encode_f64, fnv1a64, BodyReader};
use super::runner::Graph;
use super::stage::{Stage, StageCodec, StageContext, StageOutput};
use super::EngineError;

/// Everything the study stages exchange: one variant per stage.
#[derive(Debug)]
pub enum StudyArtifact {
    /// `city` — the generated ground truth.
    City(City),
    /// `synthesize` — raw per-tower binned traffic (tower × bin).
    Raw(Vec<Vec<f64>>),
    /// `vectorize` — z-scored vectors with kept/dropped provenance.
    Vectors(NormalizedMatrix),
    /// `cluster` — the identified patterns.
    Patterns(IdentifiedPatterns),
    /// `label` — geographic labels and POI validation.
    Geo(GeoLabels),
    /// `timedomain` — per-cluster series and time statistics.
    TimeDomain {
        /// Per-cluster aggregate raw series.
        series: Vec<Vec<f64>>,
        /// Per-cluster §4 statistics.
        stats: Vec<ClusterTimeStats>,
    },
    /// `frequency` — per-tower features and per-cluster statistics.
    Frequency {
        /// Per-tower frequency features (kept-index aligned).
        features: Vec<TowerFeatures>,
        /// Per-cluster feature statistics.
        stats: Vec<[ClusterFeatureStats; 3]>,
    },
    /// `decompose` — representatives and §5.3 decompositions.
    Decompose {
        /// Vector indices of the four representative towers.
        representatives: Option<[usize; 4]>,
        /// Decomposition rows.
        rows: Vec<Decomposition>,
    },
}

/// The checkpoint fingerprint of a study configuration: runs resumed
/// from a store only reuse artifacts written under an identical
/// configuration. Thread counts steer scheduling, never numbers —
/// every parallel path is bit-identical to serial — so they are
/// normalised out: a checkpoint written at any `--threads` resumes at
/// any other.
pub fn study_fingerprint(config: &StudyConfig) -> u64 {
    let mut normalized = config.clone();
    normalized.threads = 0;
    normalized.synth.threads = 0;
    normalized.identifier.threads = 0;
    fnv1a64(format!("{normalized:?}").as_bytes())
}

/// Builds the eight-stage study graph for a configuration.
pub fn study_graph(config: &StudyConfig) -> Graph<StudyArtifact> {
    Graph::new()
        .add_stage(CityStage {
            config: config.city.clone(),
        })
        .add_stage(SynthesizeStage {
            window: config.window,
            synth: config.synth,
        })
        .add_stage(VectorizeStage)
        .add_stage(ClusterStage {
            config: config.identifier,
            window: config.window,
        })
        .add_stage(LabelStage {
            threads: config.threads,
        })
        .add_stage(TimeDomainStage {
            window: config.window,
        })
        .add_stage(FrequencyStage {
            window: config.window,
            threads: config.threads,
        })
        .add_stage(DecomposeStage {
            sample: config.decompose_sample,
            threads: config.threads,
        })
}

// ---- typed artifact fetch helpers -------------------------------

fn city_of<'a>(ctx: &StageContext<'a, StudyArtifact>, name: &str) -> Result<&'a City, EngineError> {
    match ctx.artifact(name)? {
        StudyArtifact::City(c) => Ok(c),
        _ => Err(ctx.fail(format!("artifact `{name}` is not a city"))),
    }
}

fn raw_of<'a>(
    ctx: &StageContext<'a, StudyArtifact>,
    name: &str,
) -> Result<&'a Vec<Vec<f64>>, EngineError> {
    match ctx.artifact(name)? {
        StudyArtifact::Raw(r) => Ok(r),
        _ => Err(ctx.fail(format!("artifact `{name}` is not a raw matrix"))),
    }
}

fn vectors_of<'a>(
    ctx: &StageContext<'a, StudyArtifact>,
    name: &str,
) -> Result<&'a NormalizedMatrix, EngineError> {
    match ctx.artifact(name)? {
        StudyArtifact::Vectors(v) => Ok(v),
        _ => Err(ctx.fail(format!("artifact `{name}` is not a vector matrix"))),
    }
}

fn patterns_of<'a>(
    ctx: &StageContext<'a, StudyArtifact>,
    name: &str,
) -> Result<&'a IdentifiedPatterns, EngineError> {
    match ctx.artifact(name)? {
        StudyArtifact::Patterns(p) => Ok(p),
        _ => Err(ctx.fail(format!("artifact `{name}` is not a pattern set"))),
    }
}

fn geo_of<'a>(
    ctx: &StageContext<'a, StudyArtifact>,
    name: &str,
) -> Result<&'a GeoLabels, EngineError> {
    match ctx.artifact(name)? {
        StudyArtifact::Geo(g) => Ok(g),
        _ => Err(ctx.fail(format!("artifact `{name}` is not a label set"))),
    }
}

fn features_of_artifact<'a>(
    ctx: &StageContext<'a, StudyArtifact>,
    name: &str,
) -> Result<&'a [TowerFeatures], EngineError> {
    match ctx.artifact(name)? {
        StudyArtifact::Frequency { features, .. } => Ok(features),
        _ => Err(ctx.fail(format!("artifact `{name}` is not a feature set"))),
    }
}

// ---- stages -----------------------------------------------------

struct CityStage {
    config: CityConfig,
}

impl Stage<StudyArtifact> for CityStage {
    fn name(&self) -> &'static str {
        "city"
    }
    fn run(
        &self,
        ctx: &StageContext<'_, StudyArtifact>,
    ) -> Result<StageOutput<StudyArtifact>, EngineError> {
        let city = generate(&self.config).map_err(|e| ctx.fail(e))?;
        let (towers, zones, pois) = (
            city.towers().len() as u64,
            city.zones().len() as u64,
            city.pois().pois().len() as u64,
        );
        Ok(StageOutput::new(StudyArtifact::City(city))
            .with_card("towers", towers)
            .with_card("zones", zones)
            .with_card("pois", pois))
    }
    fn codec(&self) -> Option<&dyn StageCodec<StudyArtifact>> {
        Some(&CityCodec)
    }
}

struct SynthesizeStage {
    window: TraceWindow,
    synth: SynthConfig,
}

impl Stage<StudyArtifact> for SynthesizeStage {
    fn name(&self) -> &'static str {
        "synthesize"
    }
    fn deps(&self) -> &'static [&'static str] {
        &["city"]
    }
    fn run(
        &self,
        ctx: &StageContext<'_, StudyArtifact>,
    ) -> Result<StageOutput<StudyArtifact>, EngineError> {
        let city = city_of(ctx, "city")?;
        let raw = synthesize_city(city, &self.window, &self.synth);
        let (towers, bins) = (raw.len() as u64, self.window.n_bins as u64);
        Ok(StageOutput::new(StudyArtifact::Raw(raw))
            .with_card("towers", towers)
            .with_card("bins", bins))
    }
    fn codec(&self) -> Option<&dyn StageCodec<StudyArtifact>> {
        Some(&RawCodec)
    }
}

struct VectorizeStage;

impl Stage<StudyArtifact> for VectorizeStage {
    fn name(&self) -> &'static str {
        "vectorize"
    }
    fn deps(&self) -> &'static [&'static str] {
        &["synthesize"]
    }
    fn run(
        &self,
        ctx: &StageContext<'_, StudyArtifact>,
    ) -> Result<StageOutput<StudyArtifact>, EngineError> {
        let raw = raw_of(ctx, "synthesize")?;
        let normalized = normalize_matrix(raw).map_err(|e| ctx.fail(e))?;
        let (kept, dropped) = (
            normalized.kept_ids.len() as u64,
            normalized.dropped.len() as u64,
        );
        Ok(StageOutput::new(StudyArtifact::Vectors(normalized))
            .with_card("kept", kept)
            .with_card("dropped", dropped))
    }
    fn codec(&self) -> Option<&dyn StageCodec<StudyArtifact>> {
        Some(&VectorsCodec)
    }
}

struct ClusterStage {
    config: IdentifierConfig,
    /// Supplies the principal bins when the feature space resolves to
    /// spectral.
    window: TraceWindow,
}

impl Stage<StudyArtifact> for ClusterStage {
    fn name(&self) -> &'static str {
        "cluster"
    }
    fn deps(&self) -> &'static [&'static str] {
        &["vectorize"]
    }
    fn run(
        &self,
        ctx: &StageContext<'_, StudyArtifact>,
    ) -> Result<StageOutput<StudyArtifact>, EngineError> {
        let normalized = vectors_of(ctx, "vectorize")?;
        let identifier = PatternIdentifier::new(self.config);
        let patterns = identifier
            .identify_in(&normalized.vectors, Some(&self.window))
            .map_err(|e| ctx.fail(e))?;
        let (n, k, merges) = (
            normalized.vectors.len() as u64,
            patterns.k as u64,
            patterns.dendrogram.merges().len() as u64,
        );
        Ok(StageOutput::new(StudyArtifact::Patterns(patterns))
            .with_card("vectors", n)
            .with_card("k", k)
            .with_card("merges", merges))
    }
    fn codec(&self) -> Option<&dyn StageCodec<StudyArtifact>> {
        Some(&PatternsCodec)
    }
}

struct LabelStage {
    threads: usize,
}

impl Stage<StudyArtifact> for LabelStage {
    fn name(&self) -> &'static str {
        "label"
    }
    fn deps(&self) -> &'static [&'static str] {
        &["city", "vectorize", "cluster"]
    }
    fn run(
        &self,
        ctx: &StageContext<'_, StudyArtifact>,
    ) -> Result<StageOutput<StudyArtifact>, EngineError> {
        let city = city_of(ctx, "city")?;
        let normalized = vectors_of(ctx, "vectorize")?;
        let patterns = patterns_of(ctx, "cluster")?;
        let geo = label_clusters(
            city,
            &patterns.clustering,
            &normalized.kept_ids,
            self.threads,
        )
        .map_err(|e| ctx.fail(e))?;
        let (clusters, hotspots) = (geo.labels.len() as u64, geo.hotspots.len() as u64);
        Ok(StageOutput::new(StudyArtifact::Geo(geo))
            .with_card("clusters", clusters)
            .with_card("hotspots", hotspots))
    }
    // Geographic labelling enriches the study but the clustering
    // stands on its own: degrade, don't die.
    fn optional(&self) -> bool {
        true
    }
}

struct TimeDomainStage {
    window: TraceWindow,
}

impl Stage<StudyArtifact> for TimeDomainStage {
    fn name(&self) -> &'static str {
        "timedomain"
    }
    fn deps(&self) -> &'static [&'static str] {
        &["synthesize", "vectorize", "cluster"]
    }
    fn run(
        &self,
        ctx: &StageContext<'_, StudyArtifact>,
    ) -> Result<StageOutput<StudyArtifact>, EngineError> {
        let raw = raw_of(ctx, "synthesize")?;
        let normalized = vectors_of(ctx, "vectorize")?;
        let patterns = patterns_of(ctx, "cluster")?;
        let kept_raw: Vec<Vec<f64>> = normalized
            .kept_ids
            .iter()
            .map(|&id| raw[id].clone())
            .collect();
        let series = cluster_series(&kept_raw, &patterns.clustering).map_err(|e| ctx.fail(e))?;
        let stats: Vec<ClusterTimeStats> = series
            .iter()
            .map(|s| cluster_time_stats(s, &self.window))
            .collect::<Result<_, _>>()
            .map_err(|e| ctx.fail(e))?;
        let clusters = series.len() as u64;
        Ok(
            StageOutput::new(StudyArtifact::TimeDomain { series, stats })
                .with_card("clusters", clusters),
        )
    }
    fn optional(&self) -> bool {
        true
    }
}

struct FrequencyStage {
    window: TraceWindow,
    threads: usize,
}

impl Stage<StudyArtifact> for FrequencyStage {
    fn name(&self) -> &'static str {
        "frequency"
    }
    fn deps(&self) -> &'static [&'static str] {
        &["vectorize", "cluster"]
    }
    fn run(
        &self,
        ctx: &StageContext<'_, StudyArtifact>,
    ) -> Result<StageOutput<StudyArtifact>, EngineError> {
        let normalized = vectors_of(ctx, "vectorize")?;
        let patterns = patterns_of(ctx, "cluster")?;
        let features = features_of_goertzel_par(&normalized.vectors, &self.window, self.threads)
            .map_err(|e| ctx.fail(e))?;
        let stats =
            cluster_feature_stats(&features, &patterns.clustering).map_err(|e| ctx.fail(e))?;
        let (towers, clusters) = (features.len() as u64, stats.len() as u64);
        Ok(
            StageOutput::new(StudyArtifact::Frequency { features, stats })
                .with_card("towers", towers)
                .with_card("clusters", clusters),
        )
    }
    fn optional(&self) -> bool {
        true
    }
}

struct DecomposeStage {
    sample: usize,
    threads: usize,
}

impl Stage<StudyArtifact> for DecomposeStage {
    fn name(&self) -> &'static str {
        "decompose"
    }
    fn deps(&self) -> &'static [&'static str] {
        &["city", "vectorize", "cluster", "label", "frequency"]
    }
    fn run(
        &self,
        ctx: &StageContext<'_, StudyArtifact>,
    ) -> Result<StageOutput<StudyArtifact>, EngineError> {
        let city = city_of(ctx, "city")?;
        let normalized = vectors_of(ctx, "vectorize")?;
        let patterns = patterns_of(ctx, "cluster")?;
        let geo = geo_of(ctx, "label")?;
        let features = features_of_artifact(ctx, "frequency")?;

        let pure_clusters: Option<Vec<usize>> = RegionKind::PURE
            .iter()
            .map(|&k| cluster_of_kind(&geo.labels, k))
            .collect();
        let (representatives, rows) = match pure_clusters {
            Some(pure) if pure.len() == 4 => {
                let reps = representative_towers(features, &patterns.clustering, &pure)
                    .map_err(|e| ctx.fail(e))?;
                let reps4: [usize; 4] = [reps[0], reps[1], reps[2], reps[3]];
                let rep_features: [TowerFeatures; 4] = [
                    features[reps4[0]],
                    features[reps4[1]],
                    features[reps4[2]],
                    features[reps4[3]],
                ];
                let decomposer =
                    Decomposer::new(&rep_features, city, &normalized.kept_ids, Solver::ActiveSet)
                        .map_err(|e| ctx.fail(e))?;
                // Rows F1..F4: the representatives themselves.
                let mut targets: Vec<usize> = reps4.to_vec();
                // Rows P1..Pn: sampled comprehensive towers.
                if let Some(comp) = cluster_of_kind(&geo.labels, RegionKind::Comprehensive) {
                    let members = patterns.clustering.members(comp);
                    let step = (members.len() / self.sample.max(1)).max(1);
                    targets.extend(members.iter().step_by(step).take(self.sample));
                }
                let rows = decomposer
                    .decompose_all_par(&targets, features, self.threads)
                    .map_err(|e| ctx.fail(e))?;
                (Some(reps4), rows)
            }
            _ => (None, Vec::new()),
        };
        let n_rows = rows.len() as u64;
        let n_reps = if representatives.is_some() { 4 } else { 0 };
        Ok(StageOutput::new(StudyArtifact::Decompose {
            representatives,
            rows,
        })
        .with_card("rows", n_rows)
        .with_card("representatives", n_reps))
    }
    fn optional(&self) -> bool {
        true
    }
}

// ---- codecs -----------------------------------------------------

fn take<'a>(fields: &mut impl Iterator<Item = &'a str>, what: &str) -> Result<&'a str, String> {
    fields.next().ok_or_else(|| format!("missing {what} field"))
}

fn encode_row(tag: &str, row: &[f64], out: &mut String) {
    out.push_str(tag);
    for v in row {
        out.push(' ');
        out.push_str(&encode_f64(*v));
    }
    out.push('\n');
}

fn decode_row(body: &mut BodyReader<'_>, tag: &str, cols: usize) -> Result<Vec<f64>, String> {
    let row = body
        .tagged(tag)?
        .split_whitespace()
        .map(decode_f64)
        .collect::<Result<Vec<_>, _>>()?;
    if row.len() != cols {
        return Err(format!("expected {cols} values, got {}", row.len()));
    }
    Ok(row)
}

fn encode_matrix(matrix: &[Vec<f64>], cols: usize, out: &mut String) {
    out.push_str(&format!("matrix {} {cols}\n", matrix.len()));
    for row in matrix {
        encode_row("row", row, out);
    }
}

fn decode_matrix(body: &mut BodyReader<'_>) -> Result<Vec<Vec<f64>>, String> {
    let mut dims = body.tagged("matrix")?.split_whitespace();
    let rows = decode_usize(take(&mut dims, "row count")?)?;
    let cols = decode_usize(take(&mut dims, "column count")?)?;
    (0..rows).map(|_| decode_row(body, "row", cols)).collect()
}

fn encode_ids(tag: &str, ids: &[usize], out: &mut String) {
    out.push_str(&format!("{tag} {}", ids.len()));
    for id in ids {
        out.push(' ');
        out.push_str(&id.to_string());
    }
    out.push('\n');
}

fn decode_ids(body: &mut BodyReader<'_>, tag: &str) -> Result<Vec<usize>, String> {
    let mut fields = body.tagged(tag)?.split_whitespace();
    let n = decode_usize(take(&mut fields, "count")?)?;
    let ids = fields.map(decode_usize).collect::<Result<Vec<_>, _>>()?;
    if ids.len() != n {
        return Err(format!("expected {n} ids, got {}", ids.len()));
    }
    Ok(ids)
}

fn geo_fields(p: &GeoPoint) -> String {
    format!("{} {}", encode_f64(p.lon), encode_f64(p.lat))
}

fn decode_geo<'a>(fields: &mut impl Iterator<Item = &'a str>) -> Result<GeoPoint, String> {
    let lon = decode_f64(take(fields, "lon")?)?;
    let lat = decode_f64(take(fields, "lat")?)?;
    Ok(GeoPoint { lon, lat })
}

struct CityCodec;

impl StageCodec<StudyArtifact> for CityCodec {
    fn encode(&self, artifact: &StudyArtifact, out: &mut String) -> Result<(), String> {
        let StudyArtifact::City(city) = artifact else {
            return Err("expected a city artifact".to_string());
        };
        out.push_str(&format!("center {}\n", geo_fields(&city.center())));
        let blend = city.comprehensive_blend();
        out.push_str("blend");
        for b in blend {
            out.push(' ');
            out.push_str(&encode_f64(b));
        }
        out.push('\n');
        out.push_str(&format!("zones {}\n", city.zones().len()));
        for z in city.zones() {
            out.push_str(&format!(
                "zone {} {} {} {}\n",
                z.id,
                z.kind.index(),
                encode_f64(z.radius_m),
                geo_fields(&z.center)
            ));
        }
        out.push_str(&format!("towers {}\n", city.towers().len()));
        for t in city.towers() {
            // The free-text address may contain spaces: last field.
            out.push_str(&format!(
                "tower {} {} {} {} {}\n",
                t.id,
                t.kind_truth.index(),
                t.zone_id,
                geo_fields(&t.position),
                t.address
            ));
        }
        let pois = city.pois().pois();
        out.push_str(&format!("pois {}\n", pois.len()));
        for p in pois {
            out.push_str(&format!(
                "poi {} {} {}\n",
                p.kind.index(),
                p.zone_id,
                geo_fields(&p.position)
            ));
        }
        Ok(())
    }

    fn decode(&self, body: &mut BodyReader<'_>) -> Result<StudyArtifact, String> {
        let mut fields = body.tagged("center")?.split_whitespace();
        let center = decode_geo(&mut fields)?;
        let mut fields = body.tagged("blend")?.split_whitespace();
        let mut blend = [0.0f64; 4];
        for b in blend.iter_mut() {
            *b = decode_f64(take(&mut fields, "blend")?)?;
        }
        let n_zones = decode_usize(body.tagged("zones")?)?;
        let mut zones = Vec::with_capacity(n_zones);
        for _ in 0..n_zones {
            let mut fields = body.tagged("zone")?.split_whitespace();
            let id = decode_usize(take(&mut fields, "zone id")?)?;
            let kind = RegionKind::from_index(decode_usize(take(&mut fields, "zone kind")?)?)
                .ok_or("bad zone kind")?;
            let radius_m = decode_f64(take(&mut fields, "zone radius")?)?;
            let center = decode_geo(&mut fields)?;
            zones.push(Zone {
                id,
                kind,
                center,
                radius_m,
            });
        }
        let n_towers = decode_usize(body.tagged("towers")?)?;
        let mut towers = Vec::with_capacity(n_towers);
        for _ in 0..n_towers {
            let line = body.tagged("tower")?;
            let mut fields = line.splitn(6, ' ');
            let id = decode_usize(take(&mut fields, "tower id")?)?;
            let kind_truth =
                RegionKind::from_index(decode_usize(take(&mut fields, "tower kind")?)?)
                    .ok_or("bad tower kind")?;
            let zone_id = decode_usize(take(&mut fields, "tower zone")?)?;
            let position = decode_geo(&mut fields)?;
            let address = take(&mut fields, "tower address")?.to_string();
            towers.push(Tower {
                id,
                position,
                address,
                kind_truth,
                zone_id,
            });
        }
        let n_pois = decode_usize(body.tagged("pois")?)?;
        let mut pois = Vec::with_capacity(n_pois);
        for _ in 0..n_pois {
            let mut fields = body.tagged("poi")?.split_whitespace();
            let kind = PoiKind::from_index(decode_usize(take(&mut fields, "poi kind")?)?)
                .ok_or("bad poi kind")?;
            let zone_id = decode_usize(take(&mut fields, "poi zone")?)?;
            let position = decode_geo(&mut fields)?;
            pois.push(Poi {
                position,
                kind,
                zone_id,
            });
        }
        Ok(StudyArtifact::City(City::from_parts(
            zones,
            towers,
            PoiIndex::build(pois),
            center,
            blend,
        )))
    }
}

struct RawCodec;

impl StageCodec<StudyArtifact> for RawCodec {
    fn encode(&self, artifact: &StudyArtifact, out: &mut String) -> Result<(), String> {
        let StudyArtifact::Raw(raw) = artifact else {
            return Err("expected a raw-matrix artifact".to_string());
        };
        let cols = raw.first().map_or(0, Vec::len);
        encode_matrix(raw, cols, out);
        Ok(())
    }

    fn decode(&self, body: &mut BodyReader<'_>) -> Result<StudyArtifact, String> {
        Ok(StudyArtifact::Raw(decode_matrix(body)?))
    }
}

/// Encodes a [`NormalizedMatrix`] into the checkpoint body format.
/// Shared with the CLI's analyze graph, which checkpoints the same
/// artifact type.
pub fn encode_normalized(nm: &NormalizedMatrix, out: &mut String) {
    encode_ids("kept", &nm.kept_ids, out);
    encode_ids("dropped", &nm.dropped, out);
    out.push_str(&format!("imputed {}\n", nm.imputed.len()));
    for mask in &nm.imputed {
        encode_ids("mask", mask, out);
    }
    let cols = nm.vectors.first().map_or(0, Vec::len);
    encode_matrix(&nm.vectors, cols, out);
}

/// Decodes a [`NormalizedMatrix`] written by [`encode_normalized`].
///
/// # Errors
/// A rendered reason when the body is malformed or inconsistent.
pub fn decode_normalized(body: &mut BodyReader<'_>) -> Result<NormalizedMatrix, String> {
    let kept_ids = decode_ids(body, "kept")?;
    let dropped = decode_ids(body, "dropped")?;
    let n_masks = decode_usize(body.tagged("imputed")?)?;
    let mut imputed = Vec::with_capacity(n_masks);
    for _ in 0..n_masks {
        imputed.push(decode_ids(body, "mask")?);
    }
    let vectors = decode_matrix(body)?;
    if vectors.len() != kept_ids.len() {
        return Err(format!(
            "{} vectors but {} kept ids",
            vectors.len(),
            kept_ids.len()
        ));
    }
    if imputed.len() != kept_ids.len() {
        return Err(format!(
            "{} imputed masks but {} kept ids",
            imputed.len(),
            kept_ids.len()
        ));
    }
    Ok(NormalizedMatrix {
        vectors,
        kept_ids,
        dropped,
        imputed,
    })
}

/// Encodes an [`IdentifiedPatterns`] into the checkpoint body format.
/// Shared with the CLI's analyze graph.
pub fn encode_patterns(p: &IdentifiedPatterns, out: &mut String) {
    out.push_str(&format!("patterns {} {}\n", p.k, encode_f64(p.threshold)));
    encode_ids("labels", &p.clustering.labels, out);
    out.push_str(&format!("clusters {}\n", p.clustering.k));
    out.push_str(&format!("dbi {}\n", p.dbi_curve.len()));
    for point in &p.dbi_curve {
        out.push_str(&format!(
            "point {} {} {}\n",
            point.k,
            encode_f64(point.threshold),
            encode_f64(point.dbi)
        ));
    }
    let cols = p.centroids.first().map_or(0, Vec::len);
    encode_matrix(&p.centroids, cols, out);
    out.push_str(&format!("memberdist {}\n", p.member_distances.len()));
    for row in &p.member_distances {
        out.push_str(&format!("rag {}", row.len()));
        for v in row {
            out.push(' ');
            out.push_str(&encode_f64(*v));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "dendrogram {} {}\n",
        p.dendrogram.len(),
        p.dendrogram.merges().len()
    ));
    for m in p.dendrogram.merges() {
        out.push_str(&format!(
            "merge {} {} {} {}\n",
            m.a,
            m.b,
            m.size,
            encode_f64(m.distance)
        ));
    }
}

/// Decodes an [`IdentifiedPatterns`] written by [`encode_patterns`].
///
/// # Errors
/// A rendered reason when the body is malformed or inconsistent.
pub fn decode_patterns(body: &mut BodyReader<'_>) -> Result<IdentifiedPatterns, String> {
    let mut fields = body.tagged("patterns")?.split_whitespace();
    let k = decode_usize(take(&mut fields, "k")?)?;
    let threshold = decode_f64(take(&mut fields, "threshold")?)?;
    let labels = decode_ids(body, "labels")?;
    let clustering_k = decode_usize(body.tagged("clusters")?)?;
    let clustering = Clustering {
        labels,
        k: clustering_k,
    };
    let n_points = decode_usize(body.tagged("dbi")?)?;
    let mut dbi_curve = Vec::with_capacity(n_points);
    for _ in 0..n_points {
        let mut fields = body.tagged("point")?.split_whitespace();
        dbi_curve.push(DbiPoint {
            k: decode_usize(take(&mut fields, "point k")?)?,
            threshold: decode_f64(take(&mut fields, "point threshold")?)?,
            dbi: decode_f64(take(&mut fields, "point dbi")?)?,
        });
    }
    let centroids = decode_matrix(body)?;
    let n_rag = decode_usize(body.tagged("memberdist")?)?;
    let mut member_distances = Vec::with_capacity(n_rag);
    for _ in 0..n_rag {
        let mut fields = body.tagged("rag")?.split_whitespace();
        let len = decode_usize(take(&mut fields, "row length")?)?;
        let row = fields.map(decode_f64).collect::<Result<Vec<_>, _>>()?;
        if row.len() != len {
            return Err(format!("expected {len} distances, got {}", row.len()));
        }
        member_distances.push(row);
    }
    let mut fields = body.tagged("dendrogram")?.split_whitespace();
    let n = decode_usize(take(&mut fields, "leaf count")?)?;
    let n_merges = decode_usize(take(&mut fields, "merge count")?)?;
    let mut merges = Vec::with_capacity(n_merges);
    for _ in 0..n_merges {
        let mut fields = body.tagged("merge")?.split_whitespace();
        merges.push(Merge {
            a: decode_usize(take(&mut fields, "merge a")?)?,
            b: decode_usize(take(&mut fields, "merge b")?)?,
            size: decode_usize(take(&mut fields, "merge size")?)?,
            distance: decode_f64(take(&mut fields, "merge distance")?)?,
        });
    }
    let dendrogram = Dendrogram::from_sorted_merges(n, merges).map_err(|e| e.to_string())?;
    Ok(IdentifiedPatterns {
        clustering,
        k,
        threshold,
        dbi_curve,
        centroids,
        member_distances,
        dendrogram,
    })
}

struct VectorsCodec;

impl StageCodec<StudyArtifact> for VectorsCodec {
    fn encode(&self, artifact: &StudyArtifact, out: &mut String) -> Result<(), String> {
        let StudyArtifact::Vectors(nm) = artifact else {
            return Err("expected a vector-matrix artifact".to_string());
        };
        encode_normalized(nm, out);
        Ok(())
    }

    fn decode(&self, body: &mut BodyReader<'_>) -> Result<StudyArtifact, String> {
        Ok(StudyArtifact::Vectors(decode_normalized(body)?))
    }
}

struct PatternsCodec;

impl StageCodec<StudyArtifact> for PatternsCodec {
    fn encode(&self, artifact: &StudyArtifact, out: &mut String) -> Result<(), String> {
        let StudyArtifact::Patterns(p) = artifact else {
            return Err("expected a pattern-set artifact".to_string());
        };
        encode_patterns(p, out);
        Ok(())
    }

    fn decode(&self, body: &mut BodyReader<'_>) -> Result<StudyArtifact, String> {
        Ok(StudyArtifact::Patterns(decode_patterns(body)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::checkpoint::CheckpointStore;

    #[test]
    fn study_graph_schedules_the_documented_waves() {
        let graph = study_graph(&StudyConfig::tiny(7));
        assert_eq!(
            graph.waves().unwrap(),
            vec![
                vec!["city"],
                vec!["synthesize"],
                vec!["vectorize"],
                vec!["cluster"],
                vec!["label", "timedomain", "frequency"],
                vec!["decompose"],
            ]
        );
    }

    #[test]
    fn fingerprint_separates_configurations() {
        let a = study_fingerprint(&StudyConfig::tiny(7));
        assert_eq!(a, study_fingerprint(&StudyConfig::tiny(7)));
        assert_ne!(a, study_fingerprint(&StudyConfig::tiny(8)));
        assert_ne!(a, study_fingerprint(&StudyConfig::small(7)));
    }

    /// Thread counts only steer scheduling; a checkpoint written at
    /// one `--threads` must be reusable at any other.
    #[test]
    fn fingerprint_ignores_thread_counts() {
        let serial = study_fingerprint(&StudyConfig::tiny(7).with_threads(1));
        assert_eq!(serial, study_fingerprint(&StudyConfig::tiny(7)));
        assert_eq!(
            serial,
            study_fingerprint(&StudyConfig::tiny(7).with_threads(8))
        );
    }

    fn temp_store(tag: &str) -> CheckpointStore {
        let dir =
            std::env::temp_dir().join(format!("towerlens-stages-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::open(dir, 1).unwrap()
    }

    /// Every study codec must reload its artifact bit-identically.
    #[test]
    fn study_codecs_roundtrip_bit_identically() {
        let config = StudyConfig::tiny(11);
        let outcome = study_graph(&config).run(None).unwrap();
        let store = temp_store("roundtrip");

        // city
        let city_art = &outcome.artifacts["city"];
        store.save("city", &[], &CityCodec, city_art).unwrap();
        let (loaded, _) = store.load("city", &CityCodec).unwrap().unwrap();
        let (StudyArtifact::City(a), StudyArtifact::City(b)) = (city_art, &loaded) else {
            panic!("wrong variants");
        };
        assert_eq!(a.towers().len(), b.towers().len());
        assert_eq!(a.zones().len(), b.zones().len());
        assert_eq!(a.pois().pois().len(), b.pois().pois().len());
        for (x, y) in a.towers().iter().zip(b.towers()) {
            assert_eq!(x.position.lon.to_bits(), y.position.lon.to_bits());
            assert_eq!(x.address, y.address);
            assert_eq!(x.kind_truth, y.kind_truth);
        }
        assert_eq!(a.bounds().min_lon.to_bits(), b.bounds().min_lon.to_bits());
        assert_eq!(a.comprehensive_blend(), b.comprehensive_blend());

        // synthesize
        let raw_art = &outcome.artifacts["synthesize"];
        store.save("synthesize", &[], &RawCodec, raw_art).unwrap();
        let (loaded, _) = store.load("synthesize", &RawCodec).unwrap().unwrap();
        let (StudyArtifact::Raw(a), StudyArtifact::Raw(b)) = (raw_art, &loaded) else {
            panic!("wrong variants");
        };
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(b) {
            for (x, y) in ra.iter().zip(rb) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }

        // vectorize
        let vec_art = &outcome.artifacts["vectorize"];
        store
            .save("vectorize", &[], &VectorsCodec, vec_art)
            .unwrap();
        let (loaded, _) = store.load("vectorize", &VectorsCodec).unwrap().unwrap();
        let (StudyArtifact::Vectors(a), StudyArtifact::Vectors(b)) = (vec_art, &loaded) else {
            panic!("wrong variants");
        };
        assert_eq!(a.kept_ids, b.kept_ids);
        assert_eq!(a.dropped, b.dropped);
        for (ra, rb) in a.vectors.iter().zip(&b.vectors) {
            for (x, y) in ra.iter().zip(rb) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }

        // cluster
        let pat_art = &outcome.artifacts["cluster"];
        store.save("cluster", &[], &PatternsCodec, pat_art).unwrap();
        let (loaded, _) = store.load("cluster", &PatternsCodec).unwrap().unwrap();
        let (StudyArtifact::Patterns(a), StudyArtifact::Patterns(b)) = (pat_art, &loaded) else {
            panic!("wrong variants");
        };
        assert_eq!(a.k, b.k);
        assert_eq!(a.threshold.to_bits(), b.threshold.to_bits());
        assert_eq!(a.clustering, b.clustering);
        assert_eq!(a.dbi_curve.len(), b.dbi_curve.len());
        for (x, y) in a.dbi_curve.iter().zip(&b.dbi_curve) {
            assert_eq!(x.k, y.k);
            assert_eq!(x.dbi.to_bits(), y.dbi.to_bits());
        }
        assert_eq!(a.member_distances, b.member_distances);
        assert_eq!(a.dendrogram.merges(), b.dendrogram.merges());
        // The reloaded dendrogram must cut identically.
        for k in 1..=a.k {
            assert_eq!(
                a.dendrogram.cut_k(k).unwrap(),
                b.dendrogram.cut_k(k).unwrap()
            );
        }
    }
}
