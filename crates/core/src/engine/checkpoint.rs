//! Filesystem checkpointing of stage artifacts.
//!
//! One file per stage, `DIR/<stage>.ckpt`, in the workspace's
//! hand-rolled line-oriented text idiom (cf. the CLI's TSV files):
//!
//! ```text
//! towerlens-checkpoint v2
//! stage <name>
//! fingerprint <hex64>
//! cards <n>
//! card <value> <label…>        (n times)
//! data <body-line-count>
//! checksum <hex64>
//! <body lines…>                (the stage codec's payload)
//! end
//! ```
//!
//! The `fingerprint` is an FNV-1a hash of the run configuration: a
//! resume against a different configuration silently misses (the
//! stage recomputes and overwrites) rather than resurrecting stale
//! data. The `checksum` is an FNV-1a hash of the body text, verified
//! *before* the codec runs: a flipped byte that still decodes cleanly
//! (a plausible-but-wrong bit pattern) is caught here rather than
//! resurrected as data. The trailing `end` sentinel plus the recorded
//! body line count detect truncation. Floats are stored as IEEE-754
//! bit patterns ([`encode_f64`]/[`decode_f64`]) so reloads are
//! bit-identical.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use super::stage::{Card, StageCodec};
use super::supervisor::{FaultOp, IoFaultInjector};

/// Magic first line of every checkpoint file.
const MAGIC: &str = "towerlens-checkpoint v2";

/// Typed checkpoint failures. I/O errors are carried as rendered
/// strings so the error stays `Clone`/`PartialEq` (and thus
/// embeddable in [`crate::CoreError`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Reading or writing the file failed.
    Io {
        /// The file involved.
        path: String,
        /// The rendered `std::io::Error`.
        message: String,
    },
    /// The file exists but its content is malformed.
    Corrupt {
        /// The stage whose checkpoint is damaged.
        stage: String,
        /// 1-based line where parsing failed.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The file ends before its declared content (interrupted write).
    Truncated {
        /// The stage whose checkpoint is incomplete.
        stage: String,
    },
    /// The file is zero bytes (a crash between create and write).
    Empty {
        /// The stage whose checkpoint is empty.
        stage: String,
    },
    /// The body text does not hash to the recorded checksum (bit rot
    /// or a partial overwrite that still parses).
    ChecksumMismatch {
        /// The stage whose checkpoint is damaged.
        stage: String,
        /// The checksum recorded in the header.
        expected: u64,
        /// The checksum of the body actually on disk.
        found: u64,
    },
    /// The file was written under a different configuration
    /// fingerprint (reported by [`fsck_file`]; [`CheckpointStore::load`]
    /// treats this as a cache miss instead).
    FingerprintMismatch {
        /// The stage whose checkpoint is stale.
        stage: String,
        /// The fingerprint expected by the caller.
        expected: u64,
        /// The fingerprint in the file.
        found: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { path, message } => write!(f, "{path}: {message}"),
            CheckpointError::Corrupt {
                stage,
                line,
                reason,
            } => write!(
                f,
                "stage `{stage}` checkpoint corrupt at line {line}: {reason}"
            ),
            CheckpointError::Truncated { stage } => {
                write!(f, "stage `{stage}` checkpoint is truncated")
            }
            CheckpointError::Empty { stage } => {
                write!(f, "stage `{stage}` checkpoint is empty")
            }
            CheckpointError::ChecksumMismatch {
                stage,
                expected,
                found,
            } => write!(
                f,
                "stage `{stage}` checkpoint body checksum mismatch \
                 (expected {expected:016x}, found {found:016x})"
            ),
            CheckpointError::FingerprintMismatch {
                stage,
                expected,
                found,
            } => write!(
                f,
                "stage `{stage}` checkpoint belongs to a different configuration \
                 (expected fingerprint {expected:016x}, found {found:016x})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

fn io_err(path: &Path, e: std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// FNV-1a over a byte slice — the engine's configuration fingerprint
/// (and the study report's content hash). Re-exported from the
/// artifact crate's canonical definition, so WAL segments, engine
/// checkpoints, and artifact sections can never drift onto different
/// checksums.
pub use towerlens_artifact::fnv1a64;

/// Renders an `f64` as its IEEE-754 bit pattern in hex — the
/// round-trip-exact wire form used throughout checkpoint bodies.
pub fn encode_f64(v: f64) -> String {
    format!("{:x}", v.to_bits())
}

/// Inverse of [`encode_f64`].
///
/// # Errors
/// A rendered reason for a non-hex field.
pub fn decode_f64(s: &str) -> Result<f64, String> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("expected f64 bit pattern, got `{s}`"))
}

/// Parses a decimal `usize` field.
///
/// # Errors
/// A rendered reason.
pub fn decode_usize(s: &str) -> Result<usize, String> {
    s.parse()
        .map_err(|_| format!("expected integer, got `{s}`"))
}

/// Strips a leading `tag ` from a line, returning the remainder.
///
/// # Errors
/// A rendered reason when the line does not start with the tag.
pub fn expect_tag<'a>(line: &'a str, tag: &str) -> Result<&'a str, String> {
    if line == tag {
        return Ok("");
    }
    line.strip_prefix(tag)
        .and_then(|rest| rest.strip_prefix(' '))
        .ok_or_else(|| format!("expected `{tag} …`, got `{line}`"))
}

/// A line cursor over a checkpoint body that tracks the current line
/// number for error reporting.
pub struct BodyReader<'a> {
    lines: std::str::Lines<'a>,
    line_no: usize,
    offset: usize,
}

impl<'a> BodyReader<'a> {
    /// Wraps a text block; `offset` is the 1-based file line of the
    /// block's first line (0 for standalone use).
    pub fn new(body: &'a str, offset: usize) -> Self {
        BodyReader {
            lines: body.lines(),
            line_no: 0,
            offset,
        }
    }

    /// The file line number of the most recently read line.
    pub fn line_no(&self) -> usize {
        self.offset + self.line_no
    }

    /// The next line.
    ///
    /// # Errors
    /// A rendered reason at end of body.
    pub fn line(&mut self) -> Result<&'a str, String> {
        self.line_no += 1;
        self.lines
            .next()
            .ok_or_else(|| "unexpected end of data".to_string())
    }

    /// The next line with its leading `tag ` stripped.
    ///
    /// # Errors
    /// As [`BodyReader::line`] and [`expect_tag`].
    pub fn tagged(&mut self, tag: &str) -> Result<&'a str, String> {
        let line = self.line()?;
        expect_tag(line, tag)
    }

    /// The next `n` lines without consuming them, or `None` when the
    /// text ends early — the checksum lookahead.
    fn peek_lines(&self, n: usize) -> Option<Vec<&'a str>> {
        let mut ahead = self.lines.clone();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(ahead.next()?);
        }
        Some(out)
    }
}

/// The parsed fixed header of a checkpoint file.
struct RawHeader {
    named: String,
    fingerprint: u64,
    cards: Vec<Card>,
    body_lines: usize,
    checksum: u64,
}

/// Number of header lines preceding the body for a given card count
/// (magic, stage, fingerprint, cards, the card lines, data, checksum).
fn header_lines(n_cards: usize) -> usize {
    6 + n_cards
}

fn read_header(reader: &mut BodyReader<'_>, stage: &str) -> Result<RawHeader, CheckpointError> {
    let corrupt = |line: usize, reason: String| CheckpointError::Corrupt {
        stage: stage.to_string(),
        line,
        reason,
    };
    let truncated = || CheckpointError::Truncated {
        stage: stage.to_string(),
    };
    let magic = reader.line().map_err(|_| truncated())?;
    if magic != MAGIC {
        return Err(corrupt(1, format!("bad magic `{magic}`")));
    }
    let named = reader
        .tagged("stage")
        .map_err(|r| corrupt(reader.line_no(), r))?
        .to_string();
    let fp_field = reader
        .tagged("fingerprint")
        .map_err(|r| corrupt(reader.line_no(), r))?;
    let fingerprint = u64::from_str_radix(fp_field, 16)
        .map_err(|_| corrupt(reader.line_no(), format!("bad fingerprint `{fp_field}`")))?;
    let n_cards = reader
        .tagged("cards")
        .and_then(decode_usize)
        .map_err(|r| corrupt(reader.line_no(), r))?;
    let mut cards = Vec::with_capacity(n_cards);
    for _ in 0..n_cards {
        let rest = reader.tagged("card").map_err(|_| truncated())?;
        let (value, label) = rest
            .split_once(' ')
            .ok_or_else(|| corrupt(reader.line_no(), format!("bad card `{rest}`")))?;
        let value = value
            .parse()
            .map_err(|_| corrupt(reader.line_no(), format!("bad card value `{value}`")))?;
        cards.push(Card::new(label, value));
    }
    let body_lines = reader
        .tagged("data")
        .and_then(decode_usize)
        .map_err(|r| corrupt(reader.line_no(), r))?;
    let ck_field = reader
        .tagged("checksum")
        .map_err(|r| corrupt(reader.line_no(), r))?;
    let checksum = u64::from_str_radix(ck_field, 16)
        .map_err(|_| corrupt(reader.line_no(), format!("bad checksum `{ck_field}`")))?;
    Ok(RawHeader {
        named,
        fingerprint,
        cards,
        body_lines,
        checksum,
    })
}

/// Hashes the next `body_lines` lines (without consuming the reader)
/// and compares against the recorded checksum.
fn verify_body(
    reader: &BodyReader<'_>,
    stage: &str,
    body_lines: usize,
    expected: u64,
) -> Result<(), CheckpointError> {
    let Some(lines) = reader.peek_lines(body_lines) else {
        return Err(CheckpointError::Truncated {
            stage: stage.to_string(),
        });
    };
    let mut body = lines.join("\n");
    if !body.is_empty() {
        body.push('\n');
    }
    let found = fnv1a64(body.as_bytes());
    if found != expected {
        return Err(CheckpointError::ChecksumMismatch {
            stage: stage.to_string(),
            expected,
            found,
        });
    }
    Ok(())
}

/// A directory of per-stage checkpoint files sharing one
/// configuration fingerprint.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    fingerprint: u64,
    /// Transient-I/O failpoint (`TOWERLENS_FAULT_IO`); fires before
    /// the real filesystem operation so a faulted save leaves no
    /// partial state behind.
    injector: Option<Arc<IoFaultInjector>>,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory for runs of
    /// the configuration hashed into `fingerprint`. The
    /// `TOWERLENS_FAULT_IO` failpoint, when set, arms a transient
    /// fault injector over this store's saves and loads.
    ///
    /// # Errors
    /// * [`CheckpointError::Io`] when the directory cannot be created,
    /// * [`CheckpointError::Corrupt`] when `TOWERLENS_FAULT_IO` is set
    ///   but malformed — a typo'd failpoint is a permanent
    ///   configuration error, not something to retry or ignore.
    pub fn open(dir: impl Into<PathBuf>, fingerprint: u64) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        let injector = IoFaultInjector::from_env()
            .map_err(|e| CheckpointError::Corrupt {
                stage: "TOWERLENS_FAULT_IO".to_string(),
                line: 0,
                reason: e.to_string(),
            })?
            .map(Arc::new);
        Ok(CheckpointStore {
            dir,
            fingerprint,
            injector,
        })
    }

    /// Replaces the store's fault injector (builder style) — the
    /// in-process hook tests use instead of the environment variable.
    pub fn with_injector(mut self, injector: IoFaultInjector) -> Self {
        self.injector = Some(Arc::new(injector));
        self
    }

    /// Raises an injected transient fault for `op` on `stage`, when
    /// the injector says so.
    fn injected_fault(&self, op: FaultOp, stage: &str) -> Result<(), CheckpointError> {
        if let Some(inj) = &self.injector {
            if inj.should_fail(op, stage) {
                return Err(CheckpointError::Io {
                    path: self.path_of(stage).display().to_string(),
                    message: "injected transient I/O fault (TOWERLENS_FAULT_IO)".to_string(),
                });
            }
        }
        Ok(())
    }

    /// The configuration fingerprint this store validates against.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The checkpoint file of a stage.
    pub fn path_of(&self, stage: &str) -> PathBuf {
        self.dir.join(format!("{stage}.ckpt"))
    }

    /// Persists a stage artifact (atomically: temp file + rename,
    /// with the temp file fsynced before the rename and the parent
    /// directory fsynced best-effort after it, so a power loss cannot
    /// leave a complete-looking-but-unsynced checkpoint behind).
    ///
    /// # Errors
    /// [`CheckpointError::Io`] on filesystem failure,
    /// [`CheckpointError::Corrupt`] when the codec rejects the
    /// artifact (wrong variant — a programming error surfaced as
    /// data).
    pub fn save<A>(
        &self,
        stage: &str,
        cards: &[Card],
        codec: &dyn StageCodec<A>,
        artifact: &A,
    ) -> Result<(), CheckpointError> {
        self.injected_fault(FaultOp::Save, stage)?;
        let mut body = String::new();
        codec
            .encode(artifact, &mut body)
            .map_err(|reason| CheckpointError::Corrupt {
                stage: stage.to_string(),
                line: 0,
                reason,
            })?;
        if !body.is_empty() && !body.ends_with('\n') {
            body.push('\n');
        }
        let body_lines = body.lines().count();
        let checksum = fnv1a64(body.as_bytes());
        let mut text = String::with_capacity(body.len() + 256);
        text.push_str(MAGIC);
        text.push('\n');
        text.push_str(&format!("stage {stage}\n"));
        text.push_str(&format!("fingerprint {:016x}\n", self.fingerprint));
        text.push_str(&format!("cards {}\n", cards.len()));
        for c in cards {
            text.push_str(&format!("card {} {}\n", c.value, c.label));
        }
        text.push_str(&format!("data {body_lines}\n"));
        text.push_str(&format!("checksum {checksum:016x}\n"));
        text.push_str(&body);
        text.push_str("end\n");

        let path = self.path_of(stage);
        let tmp = self.dir.join(format!("{stage}.ckpt.tmp"));
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        f.write_all(text.as_bytes()).map_err(|e| io_err(&tmp, e))?;
        f.flush().map_err(|e| io_err(&tmp, e))?;
        // Durability, not just atomicity: the rename must not land
        // before the data — otherwise a power loss can leave a
        // complete-looking file full of holes.
        f.sync_all().map_err(|e| io_err(&tmp, e))?;
        drop(f);
        std::fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
        // Best-effort: persist the rename itself. Not all platforms
        // support fsync on directories, so failures are ignored.
        if let Ok(d) = std::fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Loads a stage artifact, if a valid checkpoint with a matching
    /// fingerprint exists. Returns `Ok(None)` for a missing file or a
    /// fingerprint mismatch (both mean "recompute"), and an error for
    /// a file that exists for this configuration but cannot be
    /// trusted.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] on read failure,
    /// [`CheckpointError::Empty`] for a zero-byte file,
    /// [`CheckpointError::Truncated`] for an incomplete file,
    /// [`CheckpointError::ChecksumMismatch`] when the body does not
    /// hash to the recorded checksum,
    /// [`CheckpointError::Corrupt`] for malformed content.
    pub fn load<A>(
        &self,
        stage: &str,
        codec: &dyn StageCodec<A>,
    ) -> Result<Option<(A, Vec<Card>)>, CheckpointError> {
        self.injected_fault(FaultOp::Load, stage)?;
        let path = self.path_of(stage);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err(&path, e)),
        };
        if text.is_empty() {
            return Err(CheckpointError::Empty {
                stage: stage.to_string(),
            });
        }
        let corrupt = |line: usize, reason: String| CheckpointError::Corrupt {
            stage: stage.to_string(),
            line,
            reason,
        };
        let truncated = || CheckpointError::Truncated {
            stage: stage.to_string(),
        };

        let mut reader = BodyReader::new(&text, 0);
        let header = read_header(&mut reader, stage)?;
        if header.named != stage {
            return Err(corrupt(2, format!("file is for stage `{}`", header.named)));
        }
        if header.fingerprint != self.fingerprint {
            // A checkpoint from a different configuration: stale, not
            // corrupt. Recompute (and overwrite on save).
            return Ok(None);
        }
        // Verify the body hash before handing anything to the codec —
        // a flipped byte that still parses must not come back as data.
        verify_body(&reader, stage, header.body_lines, header.checksum)?;

        let artifact = codec.decode(&mut reader).map_err(|r| {
            // Distinguish "file ends early" from "line is garbage".
            if r == "unexpected end of data" {
                truncated()
            } else {
                corrupt(reader.line_no(), r)
            }
        })?;
        // The codec must have consumed exactly the declared body, and
        // the `end` sentinel must follow — otherwise the write was
        // interrupted.
        let header_len = header_lines(header.cards.len());
        if reader.line_no() != header_len + header.body_lines {
            return Err(corrupt(
                reader.line_no(),
                format!(
                    "codec consumed {} body lines, header declares {}",
                    reader.line_no() - header_len,
                    header.body_lines
                ),
            ));
        }
        match reader.line() {
            Ok("end") => Ok(Some((artifact, header.cards))),
            Ok(other) => Err(corrupt(
                reader.line_no(),
                format!("expected `end`, got `{other}`"),
            )),
            Err(_) => Err(truncated()),
        }
    }
}

/// What [`fsck_file`] learned about a structurally valid checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckInfo {
    /// The stage named in the header.
    pub stage: String,
    /// The configuration fingerprint the file was written under.
    pub fingerprint: u64,
    /// The instrumentation cards recorded in the header.
    pub cards: Vec<Card>,
    /// The number of body lines.
    pub body_lines: usize,
}

/// Structurally validates a checkpoint file without decoding its
/// artifact: header shape, body checksum, declared line count, and
/// the `end` sentinel. Passing `expected_fingerprint` additionally
/// pins the configuration — a healthy file from another configuration
/// reports [`CheckpointError::FingerprintMismatch`] (unlike
/// [`CheckpointStore::load`], which treats that as a cache miss).
/// This is the `doctor` subcommand's workhorse.
///
/// # Errors
/// Any [`CheckpointError`]; the stage name in errors raised before
/// the header parses is the file stem.
pub fn fsck_file(
    path: &Path,
    expected_fingerprint: Option<u64>,
) -> Result<FsckInfo, CheckpointError> {
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("?")
        .to_string();
    let text = std::fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    if text.is_empty() {
        return Err(CheckpointError::Empty { stage: stem });
    }
    let mut reader = BodyReader::new(&text, 0);
    let header = read_header(&mut reader, &stem)?;
    verify_body(&reader, &header.named, header.body_lines, header.checksum)?;
    for _ in 0..header.body_lines {
        reader.line().map_err(|_| CheckpointError::Truncated {
            stage: header.named.clone(),
        })?;
    }
    match reader.line() {
        Ok("end") => {}
        Ok(other) => {
            return Err(CheckpointError::Corrupt {
                stage: header.named,
                line: reader.line_no(),
                reason: format!("expected `end`, got `{other}`"),
            })
        }
        Err(_) => {
            return Err(CheckpointError::Truncated {
                stage: header.named,
            })
        }
    }
    if let Some(expected) = expected_fingerprint {
        if header.fingerprint != expected {
            return Err(CheckpointError::FingerprintMismatch {
                stage: header.named,
                expected,
                found: header.fingerprint,
            });
        }
    }
    Ok(FsckInfo {
        stage: header.named,
        fingerprint: header.fingerprint,
        cards: header.cards,
        body_lines: header.body_lines,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy artifact: a labelled list of floats.
    #[derive(Debug, Clone, PartialEq)]
    struct Toy {
        name: String,
        values: Vec<f64>,
    }

    struct ToyCodec;

    impl StageCodec<Toy> for ToyCodec {
        fn encode(&self, artifact: &Toy, out: &mut String) -> Result<(), String> {
            out.push_str(&format!("name {}\n", artifact.name));
            out.push_str(&format!("values {}", artifact.values.len()));
            for v in &artifact.values {
                out.push(' ');
                out.push_str(&encode_f64(*v));
            }
            out.push('\n');
            Ok(())
        }

        fn decode(&self, body: &mut BodyReader<'_>) -> Result<Toy, String> {
            let name = body.tagged("name")?.to_string();
            let mut fields = body.tagged("values")?.split_whitespace();
            let n = decode_usize(fields.next().ok_or("missing count")?)?;
            let values = fields.map(decode_f64).collect::<Result<Vec<_>, _>>()?;
            if values.len() != n {
                return Err(format!("expected {n} values, got {}", values.len()));
            }
            Ok(Toy { name, values })
        }
    }

    fn temp_store(tag: &str, fingerprint: u64) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("towerlens-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::open(dir, fingerprint).unwrap()
    }

    /// Recomputes the `checksum` header line from the (possibly
    /// edited) body, so tests can exercise codec-level corruption
    /// without tripping the checksum gate first.
    fn fix_checksum(text: &str) -> String {
        let lines: Vec<&str> = text.lines().collect();
        let ck_idx = lines
            .iter()
            .position(|l| l.starts_with("checksum "))
            .unwrap();
        let end_idx = lines.iter().rposition(|l| *l == "end").unwrap();
        let mut body = lines[ck_idx + 1..end_idx].join("\n");
        if !body.is_empty() {
            body.push('\n');
        }
        let mut out = String::new();
        for (i, l) in lines.iter().enumerate() {
            if i == ck_idx {
                out.push_str(&format!("checksum {:016x}\n", fnv1a64(body.as_bytes())));
            } else {
                out.push_str(l);
                out.push('\n');
            }
        }
        out
    }

    fn toy() -> Toy {
        Toy {
            name: "probe".into(),
            // Values chosen to break any decimal round-trip: an
            // irrational-ish sum, a subnormal, and negative zero.
            values: vec![0.1 + 0.2, f64::MIN_POSITIVE / 8.0, -0.0, 1.0e300],
        }
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let store = temp_store("roundtrip", 7);
        let cards = vec![Card::new("values", 4)];
        store.save("toy", &cards, &ToyCodec, &toy()).unwrap();
        let (loaded, loaded_cards) = store.load("toy", &ToyCodec).unwrap().unwrap();
        assert_eq!(loaded_cards, cards);
        assert_eq!(loaded.name, "probe");
        assert_eq!(loaded.values.len(), 4);
        for (a, b) in loaded.values.iter().zip(&toy().values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // -0.0 stayed -0.0 (a plain == would hide the sign).
        assert_eq!(loaded.values[2].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn missing_file_is_a_cache_miss() {
        let store = temp_store("missing", 7);
        assert_eq!(store.load("toy", &ToyCodec).unwrap().map(|(a, _)| a), None);
    }

    #[test]
    fn fingerprint_mismatch_is_a_cache_miss() {
        let store = temp_store("fpmiss", 7);
        store.save("toy", &[], &ToyCodec, &toy()).unwrap();
        let other = CheckpointStore::open(store.dir.clone(), 8).unwrap();
        assert!(other.load("toy", &ToyCodec).unwrap().is_none());
    }

    #[test]
    fn truncated_file_is_a_typed_error() {
        let store = temp_store("trunc", 7);
        store.save("toy", &[], &ToyCodec, &toy()).unwrap();
        let path = store.path_of("toy");
        let text = std::fs::read_to_string(&path).unwrap();
        // Drop the `end` sentinel and the last body line — an
        // interrupted write.
        let cut: Vec<&str> = text.lines().collect();
        std::fs::write(&path, cut[..cut.len() - 2].join("\n")).unwrap();
        match store.load("toy", &ToyCodec) {
            Err(CheckpointError::Truncated { stage }) => assert_eq!(stage, "toy"),
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn missing_end_sentinel_is_truncated() {
        let store = temp_store("noend", 7);
        store.save("toy", &[], &ToyCodec, &toy()).unwrap();
        let path = store.path_of("toy");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("end\n", "")).unwrap();
        assert!(matches!(
            store.load("toy", &ToyCodec),
            Err(CheckpointError::Truncated { .. })
        ));
    }

    #[test]
    fn corrupted_body_is_a_typed_error_with_line() {
        let store = temp_store("corrupt", 7);
        store.save("toy", &[], &ToyCodec, &toy()).unwrap();
        let path = store.path_of("toy");
        let text = std::fs::read_to_string(&path).unwrap();
        // Break a body tag but keep the checksum honest, so the codec
        // (not the checksum gate) is what rejects the file.
        std::fs::write(
            &path,
            fix_checksum(&text.replace("name probe", "nome probe")),
        )
        .unwrap();
        match store.load("toy", &ToyCodec) {
            Err(CheckpointError::Corrupt { stage, line, .. }) => {
                assert_eq!(stage, "toy");
                assert!(line > 0);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn flipped_byte_is_a_checksum_mismatch() {
        let store = temp_store("flip", 7);
        store.save("toy", &[], &ToyCodec, &toy()).unwrap();
        let path = store.path_of("toy");
        let text = std::fs::read_to_string(&path).unwrap();
        // Still parses as a name line — only the hash knows.
        std::fs::write(&path, text.replace("name probe", "name qrobe")).unwrap();
        match store.load("toy", &ToyCodec) {
            Err(CheckpointError::ChecksumMismatch {
                stage,
                expected,
                found,
            }) => {
                assert_eq!(stage, "toy");
                assert_ne!(expected, found);
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn empty_file_is_a_typed_error() {
        let store = temp_store("empty", 7);
        std::fs::write(store.path_of("toy"), "").unwrap();
        match store.load("toy", &ToyCodec) {
            Err(CheckpointError::Empty { stage }) => assert_eq!(stage, "toy"),
            other => panic!("expected Empty, got {other:?}"),
        }
    }

    #[test]
    fn fsck_validates_and_reports() {
        let store = temp_store("fsck", 7);
        let cards = vec![Card::new("values", 4)];
        store.save("toy", &cards, &ToyCodec, &toy()).unwrap();
        let path = store.path_of("toy");

        let info = fsck_file(&path, Some(7)).unwrap();
        assert_eq!(info.stage, "toy");
        assert_eq!(info.fingerprint, 7);
        assert_eq!(info.cards, cards);
        assert_eq!(info.body_lines, 2);

        // Unpinned fsck accepts any fingerprint; pinned fsck reports
        // the mismatch instead of treating it as a miss.
        assert!(fsck_file(&path, None).is_ok());
        match fsck_file(&path, Some(8)) {
            Err(CheckpointError::FingerprintMismatch {
                stage,
                expected,
                found,
            }) => {
                assert_eq!(stage, "toy");
                assert_eq!((expected, found), (8, 7));
            }
            other => panic!("expected FingerprintMismatch, got {other:?}"),
        }
    }

    #[test]
    fn fsck_flags_each_damage_class() {
        let store = temp_store("fsck-damage", 7);
        store.save("toy", &[], &ToyCodec, &toy()).unwrap();
        let path = store.path_of("toy");
        let pristine = std::fs::read_to_string(&path).unwrap();

        std::fs::write(&path, "").unwrap();
        assert!(matches!(
            fsck_file(&path, None),
            Err(CheckpointError::Empty { .. })
        ));

        let cut: Vec<&str> = pristine.lines().collect();
        std::fs::write(&path, cut[..cut.len() - 2].join("\n")).unwrap();
        assert!(matches!(
            fsck_file(&path, None),
            Err(CheckpointError::Truncated { .. })
        ));

        std::fs::write(&path, pristine.replace("name probe", "name qrobe")).unwrap();
        assert!(matches!(
            fsck_file(&path, None),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));

        std::fs::write(&path, pristine.replace(MAGIC, "towerlens-checkpoint v0")).unwrap();
        assert!(matches!(
            fsck_file(&path, None),
            Err(CheckpointError::Corrupt { line: 1, .. })
        ));
    }

    #[test]
    fn bad_magic_is_corrupt() {
        let store = temp_store("magic", 7);
        std::fs::write(store.path_of("toy"), "hello\nworld\n").unwrap();
        assert!(matches!(
            store.load("toy", &ToyCodec),
            Err(CheckpointError::Corrupt { line: 1, .. })
        ));
    }

    #[test]
    fn f64_field_roundtrip_covers_edge_values() {
        for v in [
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN,
            1.5e-310,
        ] {
            assert_eq!(decode_f64(&encode_f64(v)).unwrap().to_bits(), v.to_bits());
        }
        let nan = decode_f64(&encode_f64(f64::NAN)).unwrap();
        assert_eq!(nan.to_bits(), f64::NAN.to_bits());
        assert!(decode_f64("zz").is_err());
    }

    #[test]
    fn fnv1a64_is_stable_and_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }
}
