//! The [`Stage`] trait and the values stages exchange.

use std::collections::HashMap;

use super::checkpoint::BodyReader;
use super::EngineError;

/// A named cardinality ("towers=120", "merges=119") attached to a
/// stage report; the instrumentation equivalent of a row count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Card {
    /// What is being counted.
    pub label: String,
    /// The count.
    pub value: u64,
}

impl Card {
    /// Creates a card.
    pub fn new(label: impl Into<String>, value: u64) -> Self {
        Card {
            label: label.into(),
            value,
        }
    }
}

impl std::fmt::Display for Card {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}={}", self.label, self.value)
    }
}

/// What a stage returns: its artifact plus instrumentation cards.
#[derive(Debug)]
pub struct StageOutput<A> {
    /// The produced artifact, stored under the stage's name.
    pub artifact: A,
    /// Cardinalities for the stage report (and the checkpoint header,
    /// so a cached stage still reports them).
    pub cards: Vec<Card>,
}

impl<A> StageOutput<A> {
    /// Wraps an artifact with no cards.
    pub fn new(artifact: A) -> Self {
        StageOutput {
            artifact,
            cards: Vec::new(),
        }
    }

    /// Attaches a card (builder style).
    pub fn with_card(mut self, label: impl Into<String>, value: u64) -> Self {
        self.cards.push(Card::new(label, value));
        self
    }
}

/// What a running stage sees: the artifacts of every stage completed
/// in an earlier wave.
pub struct StageContext<'a, A> {
    stage: &'static str,
    artifacts: &'a HashMap<&'static str, A>,
}

impl<'a, A> StageContext<'a, A> {
    pub(crate) fn new(stage: &'static str, artifacts: &'a HashMap<&'static str, A>) -> Self {
        StageContext { stage, artifacts }
    }

    /// The running stage's own name.
    pub fn stage(&self) -> &'static str {
        self.stage
    }

    /// The artifact a completed stage produced.
    ///
    /// # Errors
    /// [`EngineError::MissingArtifact`] when `name` has not completed
    /// (not a declared dependency, or skipped).
    pub fn artifact(&self, name: &str) -> Result<&'a A, EngineError> {
        self.artifacts
            .get(name)
            .ok_or_else(|| EngineError::MissingArtifact {
                stage: self.stage.to_string(),
                dep: name.to_string(),
            })
    }

    /// Wraps a stage-local failure into [`EngineError::Stage`].
    pub fn fail(&self, message: impl std::fmt::Display) -> EngineError {
        EngineError::Stage {
            stage: self.stage.to_string(),
            message: message.to_string(),
        }
    }

    /// As [`StageContext::fail`], but marks the failure *transient*:
    /// a supervised run ([`super::Supervisor`] with a retry budget)
    /// will re-execute the stage instead of failing fast. Use for
    /// failures that plausibly heal on retry — a flaky upstream read,
    /// a momentarily unavailable resource — never for data errors.
    pub fn fail_transient(&self, message: impl std::fmt::Display) -> EngineError {
        EngineError::Stage {
            stage: self.stage.to_string(),
            message: format!("{}{message}", super::supervisor::TRANSIENT_PREFIX),
        }
    }
}

/// One unit of the pipeline: a named computation with declared
/// dependencies.
pub trait Stage<A>: Send + Sync {
    /// The stage's unique name — also its artifact key and its
    /// checkpoint file stem.
    fn name(&self) -> &'static str;

    /// Names of the stages whose artifacts this stage reads.
    fn deps(&self) -> &'static [&'static str] {
        &[]
    }

    /// Runs the stage.
    ///
    /// # Errors
    /// Any [`EngineError`]; stage-local failures are wrapped via
    /// [`StageContext::fail`].
    fn run(&self, ctx: &StageContext<'_, A>) -> Result<StageOutput<A>, EngineError>;

    /// The codec persisting this stage's artifact, if it is
    /// checkpointable.
    fn codec(&self) -> Option<&dyn StageCodec<A>> {
        None
    }

    /// Whether the run may continue without this stage's artifact.
    ///
    /// When an optional stage errors, the runner marks it
    /// [`super::StageStatus::Failed`], prunes its dependents, and
    /// completes the rest of the graph instead of aborting. Errors
    /// from non-optional stages still fail the run. (Panics are
    /// always contained this way, whatever the stage declares — a
    /// panic must never take down sibling stages mid-wave.)
    fn optional(&self) -> bool {
        false
    }
}

/// Encodes/decodes one stage's artifact to the checkpoint body (a
/// line-oriented text block; see [`super::checkpoint`]).
pub trait StageCodec<A>: Send + Sync {
    /// Appends the artifact's body lines to `out` (each line
    /// `\n`-terminated).
    ///
    /// # Errors
    /// A rendered reason, e.g. when handed the wrong artifact variant.
    fn encode(&self, artifact: &A, out: &mut String) -> Result<(), String>;

    /// Rebuilds the artifact from body lines.
    ///
    /// # Errors
    /// A rendered reason; the store wraps it into
    /// [`super::CheckpointError::Corrupt`] with the failing line
    /// number.
    fn decode(&self, body: &mut BodyReader<'_>) -> Result<A, String>;
}
