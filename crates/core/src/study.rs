//! End-to-end study driver: city → traffic → vectorizer → patterns →
//! labels → time & frequency analyses → decomposition.
//!
//! This is the programmatic equivalent of "run the whole paper once".
//! The pipeline is expressed as an [`engine`](crate::engine) stage
//! graph (see [`crate::engine::study_stages`] for the stage list and
//! wave structure); [`Study::run`] executes it and assembles the
//! [`StudyReport`] from the stage artifacts. The repro harness
//! (`towerlens-bench`) and the examples consume the report.
//!
//! [`Study::run_instrumented`] additionally returns the per-stage
//! [`RunReport`] and, given a [`CheckpointStore`], persists the
//! expensive front of the pipeline so a later run resumes from disk.

use std::collections::HashMap;

use towerlens_city::city::City;
use towerlens_city::config::CityConfig;
use towerlens_city::zone::RegionKind;
use towerlens_mobility::config::SynthConfig;
use towerlens_pipeline::feature::FeatureSpace;
use towerlens_trace::time::TraceWindow;

use crate::decompose::Decomposition;
use crate::engine::{
    study_fingerprint, study_graph, CheckpointStore, EngineError, RunOutcome, RunReport,
    StudyArtifact, Supervisor,
};
use crate::error::CoreError;
use crate::freq::{ClusterFeatureStats, TowerFeatures};
use crate::identifier::{IdentifiedPatterns, IdentifierConfig};
use crate::labeling::{cluster_of_kind, GeoLabels};
use crate::timedomain::ClusterTimeStats;

/// Configuration of a full study run.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// City generation parameters.
    pub city: CityConfig,
    /// Traffic synthesis parameters.
    pub synth: SynthConfig,
    /// Binning window.
    pub window: TraceWindow,
    /// Pattern-identifier parameters.
    pub identifier: IdentifierConfig,
    /// How many comprehensive-cluster towers to decompose in §5.3.
    pub decompose_sample: usize,
    /// Worker threads for the labelling, frequency, and decomposition
    /// stages (`0` = available parallelism). Synthesis and clustering
    /// carry their own knobs ([`SynthConfig::threads`],
    /// [`IdentifierConfig::threads`]); [`StudyConfig::with_threads`]
    /// sets all of them at once. Thread counts never change any
    /// number — every parallel path is bit-identical to serial.
    pub threads: usize,
}

impl StudyConfig {
    /// Paper scale: 9,600 towers, 4 weeks. Minutes of compute.
    pub fn paper_scale(seed: u64) -> Self {
        StudyConfig {
            city: CityConfig::paper_scale(seed),
            synth: SynthConfig {
                seed: seed ^ 0x5EED,
                ..SynthConfig::default()
            },
            window: TraceWindow::paper(),
            identifier: IdentifierConfig::default(),
            decompose_sample: 32,
            threads: 0,
        }
    }

    /// Applies one worker-thread budget across every parallel stage:
    /// synthesis, clustering, labelling, frequency, decomposition.
    /// `0` means "use available parallelism".
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self.synth.threads = threads;
        self.identifier.threads = threads;
        self
    }

    /// Medium scale (repro default): 2,400 towers, 4 weeks. Seconds.
    pub fn medium(seed: u64) -> Self {
        StudyConfig {
            city: CityConfig::medium(seed),
            ..StudyConfig::paper_scale(seed)
        }
    }

    /// Small scale: 600 towers, 2 weeks.
    pub fn small(seed: u64) -> Self {
        StudyConfig {
            city: CityConfig::small(seed),
            window: TraceWindow::days(14),
            ..StudyConfig::paper_scale(seed)
        }
    }

    /// Tiny scale for tests: 120 towers, 1 week.
    pub fn tiny(seed: u64) -> Self {
        StudyConfig {
            city: CityConfig::tiny(seed),
            window: TraceWindow::days(7),
            decompose_sample: 8,
            ..StudyConfig::paper_scale(seed)
        }
    }
}

/// Everything a study run produces.
#[derive(Debug)]
pub struct StudyReport {
    /// The generated city (ground truth included).
    pub city: City,
    /// The binning window used.
    pub window: TraceWindow,
    /// Raw per-tower traffic (tower id × bin, bytes).
    pub raw: Vec<Vec<f64>>,
    /// Tower id of each analysed (kept) vector.
    pub kept_ids: Vec<usize>,
    /// Z-scored traffic vectors (kept-index aligned).
    pub vectors: Vec<Vec<f64>>,
    /// The identified patterns (clustering, DBI curve, centroids).
    pub patterns: IdentifiedPatterns,
    /// Geographic labels and POI validation.
    pub geo: GeoLabels,
    /// Per-cluster aggregate raw series.
    pub cluster_series: Vec<Vec<f64>>,
    /// Per-cluster time-domain statistics (§4).
    pub time_stats: Vec<ClusterTimeStats>,
    /// Per-tower frequency features (kept-index aligned).
    pub features: Vec<TowerFeatures>,
    /// Per-cluster frequency-feature statistics (Fig 16).
    pub feature_stats: Vec<[ClusterFeatureStats; 3]>,
    /// Vector indices of the four representative towers (pure-pattern
    /// order), when all four pure patterns were labelled.
    pub representatives: Option<[usize; 4]>,
    /// §5.3 decompositions of sampled comprehensive towers (plus the
    /// four representatives themselves as the `F1..F4` sanity rows).
    pub decompositions: Vec<Decomposition>,
}

impl StudyReport {
    /// The cluster index labelled with `kind`, if any.
    pub fn cluster_of(&self, kind: RegionKind) -> Option<usize> {
        cluster_of_kind(&self.geo.labels, kind)
    }

    /// City-wide aggregate traffic series.
    pub fn total_series(&self) -> Vec<f64> {
        let n_bins = self.window.n_bins;
        let mut total = vec![0.0; n_bins];
        for row in &self.raw {
            for (t, v) in total.iter_mut().zip(row) {
                *t += v;
            }
        }
        total
    }

    /// The z-scored vector of a representative tower (by pure-pattern
    /// index 0..4), if representatives were found.
    pub fn representative_vector(&self, pure_idx: usize) -> Option<&[f64]> {
        let reps = self.representatives?;
        self.vectors.get(*reps.get(pure_idx)?).map(|v| v.as_slice())
    }

    /// An FNV-1a content hash over every numeric and categorical
    /// field of the report, with floats hashed by bit pattern. Two
    /// reports fingerprint equal iff the pipeline produced
    /// bit-identical results — the equivalence oracle for the staged
    /// engine vs the monolithic driver, and for resumed vs fresh
    /// runs.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        // Window.
        h.u64(self.window.start_s);
        h.u64(self.window.bin_secs);
        h.usize(self.window.n_bins);
        // City (ordered collections only: the POI spatial index
        // buckets are a HashMap, so hash the ordered POI list).
        for z in self.city.zones() {
            h.usize(z.id);
            h.usize(z.kind.index());
            h.f64(z.center.lon);
            h.f64(z.center.lat);
            h.f64(z.radius_m);
        }
        for t in self.city.towers() {
            h.usize(t.id);
            h.usize(t.kind_truth.index());
            h.usize(t.zone_id);
            h.f64(t.position.lon);
            h.f64(t.position.lat);
            h.bytes(t.address.as_bytes());
        }
        for p in self.city.pois().pois() {
            h.usize(p.kind.index());
            h.usize(p.zone_id);
            h.f64(p.position.lon);
            h.f64(p.position.lat);
        }
        let b = self.city.bounds();
        for v in [b.min_lon, b.max_lon, b.min_lat, b.max_lat] {
            h.f64(v);
        }
        h.f64(self.city.center().lon);
        h.f64(self.city.center().lat);
        for v in self.city.comprehensive_blend() {
            h.f64(v);
        }
        // Traffic and vectors.
        for row in &self.raw {
            h.row(row);
        }
        for &id in &self.kept_ids {
            h.usize(id);
        }
        for row in &self.vectors {
            h.row(row);
        }
        // Patterns.
        h.usize(self.patterns.k);
        h.f64(self.patterns.threshold);
        h.usize(self.patterns.clustering.k);
        for &l in &self.patterns.clustering.labels {
            h.usize(l);
        }
        for p in &self.patterns.dbi_curve {
            h.usize(p.k);
            h.f64(p.threshold);
            h.f64(p.dbi);
        }
        for row in &self.patterns.centroids {
            h.row(row);
        }
        for row in &self.patterns.member_distances {
            h.row(row);
        }
        for m in self.patterns.dendrogram.merges() {
            h.usize(m.a);
            h.usize(m.b);
            h.usize(m.size);
            h.f64(m.distance);
        }
        // Geography.
        for &l in &self.geo.labels {
            h.usize(l.index());
        }
        for profile in &self.geo.poi_profiles {
            for &v in profile {
                h.f64(v);
            }
        }
        for p in &self.geo.hotspots {
            h.f64(p.lon);
            h.f64(p.lat);
        }
        for counts in &self.geo.hotspot_poi {
            for &c in counts {
                h.usize(c);
            }
        }
        h.f64(self.geo.ground_truth_agreement);
        // Time domain.
        for row in &self.cluster_series {
            h.row(row);
        }
        for s in &self.time_stats {
            h.row(&s.weekday_profile);
            h.row(&s.weekend_profile);
            h.f64(s.weekday_weekend_ratio);
            for pv in [&s.weekday, &s.weekend] {
                h.f64(pv.max_traffic);
                h.f64(pv.min_traffic);
                h.f64(pv.peak_valley_ratio);
                h.u64(pv.peak_time.0 as u64);
                h.u64(pv.peak_time.1 as u64);
                h.u64(pv.valley_time.0 as u64);
                h.u64(pv.valley_time.1 as u64);
            }
        }
        // Frequency.
        for f in &self.features {
            for v in [
                f.amp_week,
                f.phase_week,
                f.amp_day,
                f.phase_day,
                f.amp_half,
                f.phase_half,
            ] {
                h.f64(v);
            }
        }
        for triple in &self.feature_stats {
            for s in triple {
                h.f64(s.amp_mean);
                h.f64(s.amp_std);
                h.option_f64(s.phase_mean);
                h.option_f64(s.phase_std);
            }
        }
        // Decomposition.
        match self.representatives {
            Some(reps) => {
                h.u64(1);
                for r in reps {
                    h.usize(r);
                }
            }
            None => h.u64(0),
        }
        for d in &self.decompositions {
            h.usize(d.vector_index);
            for v in d.coefficients {
                h.f64(v);
            }
            h.f64(d.residual_sqr);
            for v in d.ntf_idf {
                h.f64(v);
            }
        }
        h.finish()
    }
}

/// Incremental FNV-1a, with typed writers matching the report fields.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn option_f64(&mut self, v: Option<f64>) {
        match v {
            Some(v) => {
                self.u64(1);
                self.f64(v);
            }
            None => self.u64(0),
        }
    }
    fn row(&mut self, row: &[f64]) {
        self.usize(row.len());
        for &v in row {
            self.f64(v);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// The study driver.
#[derive(Debug, Clone)]
pub struct Study {
    config: StudyConfig,
}

impl Study {
    /// Creates a study from a configuration.
    pub fn new(config: StudyConfig) -> Self {
        Study { config }
    }

    /// The configuration.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// The checkpoint fingerprint of this study's configuration —
    /// what a [`CheckpointStore`] for this study must be opened with.
    pub fn checkpoint_fingerprint(&self) -> u64 {
        study_fingerprint(&self.config)
    }

    /// Runs the full pipeline through the stage engine.
    ///
    /// # Errors
    /// Propagates every stage's failure as [`CoreError`].
    pub fn run(&self) -> Result<StudyReport, CoreError> {
        Ok(self.run_instrumented(None)?.0)
    }

    /// Runs the pipeline and returns the per-stage instrumentation
    /// alongside the report. With a [`CheckpointStore`] (opened with
    /// [`Study::checkpoint_fingerprint`]) the generation, synthesis,
    /// vectorization, and clustering stages are persisted on first
    /// run and reloaded — bit-identically — on resume.
    ///
    /// # Errors
    /// As [`Study::run`], plus checkpoint I/O and corruption errors.
    pub fn run_instrumented(
        &self,
        store: Option<&CheckpointStore>,
    ) -> Result<(StudyReport, RunReport), CoreError> {
        self.run_instrumented_with(store, &Supervisor::default())
    }

    /// As [`Study::run_instrumented`], under a [`Supervisor`]:
    /// transient failures retry with deterministic backoff and stages
    /// may carry a wall-time budget. `Supervisor::default()` is
    /// exactly [`Study::run_instrumented`].
    ///
    /// # Errors
    /// As [`Study::run_instrumented`], plus stage-timeout errors from
    /// the watchdog.
    pub fn run_instrumented_with(
        &self,
        store: Option<&CheckpointStore>,
        supervisor: &Supervisor,
    ) -> Result<(StudyReport, RunReport), CoreError> {
        let graph = study_graph(&self.config);
        let RunOutcome {
            mut artifacts,
            report,
        } = graph.run_with(store, supervisor)?;
        let study = assemble(&self.config, &mut artifacts)?;
        Ok((study, report))
    }

    /// Runs the pipeline fault-tolerantly: a panic in any stage, or a
    /// failure in an optional one (labelling, time-domain, frequency,
    /// decomposition), degrades the corresponding report section to
    /// `None` instead of killing the run. The required spine (city →
    /// synthesize → vectorize → cluster) must still succeed. The
    /// [`RunReport`] records which stages failed (with their rendered
    /// errors) and which were pruned behind them.
    ///
    /// # Errors
    /// Failures of required stages, scheduling errors, and checkpoint
    /// I/O errors. Corrupt checkpoints are *not* errors here — they
    /// fall back to recompute with a [`RunReport::warnings`] entry.
    pub fn run_resilient(
        &self,
        store: Option<&CheckpointStore>,
    ) -> Result<(PartialStudyReport, RunReport), CoreError> {
        self.run_resilient_with(store, &Supervisor::default())
    }

    /// As [`Study::run_resilient`], under a [`Supervisor`] — the
    /// degraded-but-alive path with retries, deadlines, and the
    /// circuit breaker on top. This is what the CLI's `study` command
    /// runs when `--retries` / `--stage-timeout-ms` are given.
    ///
    /// # Errors
    /// As [`Study::run_resilient`]; a timed-out *required* stage still
    /// fails the run.
    pub fn run_resilient_with(
        &self,
        store: Option<&CheckpointStore>,
        supervisor: &Supervisor,
    ) -> Result<(PartialStudyReport, RunReport), CoreError> {
        let graph = study_graph(&self.config);
        let RunOutcome {
            mut artifacts,
            report,
        } = graph.run_with(store, supervisor)?;
        let partial = assemble_partial(&self.config, &mut artifacts)?;
        Ok((partial, report))
    }

    /// The pre-engine single-function pipeline, kept verbatim as the
    /// numerical reference: the golden test asserts that the staged
    /// engine reproduces this path bit-for-bit (see
    /// [`StudyReport::fingerprint`]).
    #[doc(hidden)]
    pub fn run_monolithic(&self) -> Result<StudyReport, CoreError> {
        use towerlens_city::generate::generate;
        use towerlens_mobility::synth::synthesize_city;
        use towerlens_opt::simplex::Solver;
        use towerlens_pipeline::normalize::normalize_matrix;

        use crate::decompose::Decomposer;
        use crate::freq::{cluster_feature_stats, features_of_goertzel, representative_towers};
        use crate::identifier::PatternIdentifier;
        use crate::labeling::label_clusters;
        use crate::timedomain::{cluster_series, cluster_time_stats};

        let cfg = &self.config;
        // 1. Ground truth.
        let city = generate(&cfg.city)?;
        // 2. Traffic (fast synthesis path).
        let raw = synthesize_city(&city, &cfg.window, &cfg.synth);
        // 3. Vectorize (phase 2: z-score; phase 1 happened in synth —
        //    the log path exercises the full vectorizer; see the
        //    integration tests).
        let normalized = normalize_matrix(&raw)?;
        let kept_ids = normalized.kept_ids.clone();
        let vectors = normalized.vectors;
        // 4. Identify patterns (in the configured feature space; the
        //    window supplies the spectral bins when that space wins).
        let identifier = PatternIdentifier::new(cfg.identifier);
        let patterns = identifier.identify_in(&vectors, Some(&cfg.window))?;
        // 5. Geographic labels.
        let geo = label_clusters(&city, &patterns.clustering, &kept_ids, 1)?;
        // 6. Time-domain statistics over the kept towers' raw rows.
        let kept_raw: Vec<Vec<f64>> = kept_ids.iter().map(|&id| raw[id].clone()).collect();
        let series = cluster_series(&kept_raw, &patterns.clustering)?;
        let time_stats: Vec<ClusterTimeStats> = series
            .iter()
            .map(|s| cluster_time_stats(s, &cfg.window))
            .collect::<Result<_, _>>()?;
        // 7. Frequency features (Goertzel at the three principal
        //    bins, the same extractor the staged engine runs).
        let features = features_of_goertzel(&vectors, &cfg.window)?;
        let feature_stats = cluster_feature_stats(&features, &patterns.clustering)?;
        // 8. Representatives + decomposition.
        let pure_clusters: Option<Vec<usize>> = RegionKind::PURE
            .iter()
            .map(|&k| cluster_of_kind(&geo.labels, k))
            .collect();
        let (representatives, decompositions) = match pure_clusters {
            Some(pure) if pure.len() == 4 => {
                let reps = representative_towers(&features, &patterns.clustering, &pure)?;
                let reps4: [usize; 4] = [reps[0], reps[1], reps[2], reps[3]];
                let rep_features: [TowerFeatures; 4] = [
                    features[reps4[0]],
                    features[reps4[1]],
                    features[reps4[2]],
                    features[reps4[3]],
                ];
                let decomposer =
                    Decomposer::new(&rep_features, &city, &kept_ids, Solver::ActiveSet)?;
                // Rows F1..F4: the representatives themselves.
                let mut targets: Vec<usize> = reps4.to_vec();
                // Rows P1..Pn: sampled comprehensive towers.
                if let Some(comp) = cluster_of_kind(&geo.labels, RegionKind::Comprehensive) {
                    let members = patterns.clustering.members(comp);
                    let step = (members.len() / cfg.decompose_sample.max(1)).max(1);
                    targets.extend(members.iter().step_by(step).take(cfg.decompose_sample));
                }
                let rows = decomposer.decompose_all(&targets, &features)?;
                (Some(reps4), rows)
            }
            _ => (None, Vec::new()),
        };

        Ok(StudyReport {
            city,
            window: cfg.window,
            raw,
            kept_ids,
            vectors,
            patterns,
            geo,
            cluster_series: series,
            time_stats,
            features,
            feature_stats,
            representatives,
            decompositions,
        })
    }
}

/// What a [`Study::run_resilient`] run produced: the required spine
/// plus whichever optional sections completed.
#[derive(Debug)]
pub struct PartialStudyReport {
    /// The generated city (ground truth included).
    pub city: City,
    /// The binning window used.
    pub window: TraceWindow,
    /// Raw per-tower traffic (tower id × bin, bytes).
    pub raw: Vec<Vec<f64>>,
    /// Tower id of each analysed (kept) vector.
    pub kept_ids: Vec<usize>,
    /// Z-scored traffic vectors (kept-index aligned).
    pub vectors: Vec<Vec<f64>>,
    /// The identified patterns (clustering, DBI curve, centroids).
    pub patterns: IdentifiedPatterns,
    /// Geographic labels, when the `label` stage completed.
    pub geo: Option<GeoLabels>,
    /// Per-cluster series and time statistics, when `timedomain`
    /// completed.
    pub time: Option<(Vec<Vec<f64>>, Vec<ClusterTimeStats>)>,
    /// Frequency features and per-cluster stats, when `frequency`
    /// completed.
    pub frequency: Option<(Vec<TowerFeatures>, Vec<[ClusterFeatureStats; 3]>)>,
    /// Representatives and §5.3 decomposition rows, when `decompose`
    /// completed.
    pub decomposition: Option<(Option<[usize; 4]>, Vec<Decomposition>)>,
}

impl PartialStudyReport {
    /// Whether every optional section completed.
    pub fn is_complete(&self) -> bool {
        self.geo.is_some()
            && self.time.is_some()
            && self.frequency.is_some()
            && self.decomposition.is_some()
    }

    /// Upgrades to a full [`StudyReport`] when nothing was lost.
    pub fn into_full(self) -> Option<StudyReport> {
        let geo = self.geo?;
        let (cluster_series, time_stats) = self.time?;
        let (features, feature_stats) = self.frequency?;
        let (representatives, decompositions) = self.decomposition?;
        Some(StudyReport {
            city: self.city,
            window: self.window,
            raw: self.raw,
            kept_ids: self.kept_ids,
            vectors: self.vectors,
            patterns: self.patterns,
            geo,
            cluster_series,
            time_stats,
            features,
            feature_stats,
            representatives,
            decompositions,
        })
    }
}

/// Builds the versioned query artifact from study results — the
/// checkpoint → artifact handoff. The snapshot is self-contained:
/// labels, spectral features, the frozen basis, stored
/// decompositions, classification centroids, and per-tower expected
/// day profiles for screening.
///
/// `feature_space` is the configured space (resolved against the
/// kept-tower count before being recorded); `fingerprint` is the
/// study's checkpoint fingerprint, carried for provenance.
///
/// This is the shared assembly point: [`StudyReport::to_snapshot`],
/// [`PartialStudyReport::to_snapshot`], and the CLI's analyze path
/// all feed it, so every writer freezes the basis the same way
/// (`Decomposer::new`'s construction — the representatives' `f3`
/// features in pure-pattern order).
///
/// # Errors
/// [`CoreError::NotEnoughData`] when the feature rows do not cover
/// the kept vectors.
#[allow(clippy::too_many_arguments)]
pub fn snapshot_from_parts(
    window: &TraceWindow,
    kept_ids: &[usize],
    vectors: &[Vec<f64>],
    patterns: &IdentifiedPatterns,
    kinds: Option<&[RegionKind]>,
    features: &[TowerFeatures],
    representatives: Option<[usize; 4]>,
    decompositions: &[Decomposition],
    fingerprint: u64,
    feature_space: FeatureSpace,
) -> Result<towerlens_artifact::Snapshot, CoreError> {
    if features.len() != vectors.len() {
        return Err(CoreError::NotEnoughData {
            what: "frequency features for snapshot",
            needed: vectors.len(),
            got: features.len(),
        });
    }
    // A window whose bin width does not tile a day still snapshots —
    // the profile section is just empty and `screen` reports that at
    // query time.
    let bins_per_day = if window.bin_secs > 0 && 86_400 % window.bin_secs == 0 {
        (86_400 / window.bin_secs) as usize
    } else {
        0
    };
    let basis = representatives.map(|reps| towerlens_artifact::BasisSection {
        representatives: reps,
        // Same construction as `Decomposer::new`: the representative
        // towers' f3 features, pure-pattern order — so live query
        // decompositions solve the exact system the study solved.
        vertices: [
            features[reps[0]].f3(),
            features[reps[1]].f3(),
            features[reps[2]].f3(),
            features[reps[3]].f3(),
        ],
    });
    Ok(towerlens_artifact::Snapshot {
        meta: towerlens_artifact::Meta {
            fingerprint,
            window_start_s: window.start_s,
            bin_secs: window.bin_secs,
            n_bins: window.n_bins,
            k: patterns.k,
            threshold: patterns.threshold,
            feature_space: match feature_space.resolve(vectors.len()) {
                FeatureSpace::Raw => "raw".to_string(),
                _ => "spectral".to_string(),
            },
        },
        tower_ids: kept_ids.iter().map(|&id| id as u64).collect(),
        labels: patterns
            .clustering
            .labels
            .iter()
            .map(|&label| label as u32)
            .collect(),
        features: features.iter().map(TowerFeatures::f6).collect(),
        centroids: patterns.centroids.clone(),
        kinds: kinds.map(|ks| ks.iter().map(|k| k.label().to_string()).collect()),
        basis,
        decompositions: decompositions
            .iter()
            .map(|d| towerlens_artifact::DecompRow {
                vector_index: d.vector_index,
                coefficients: d.coefficients,
                residual_sqr: d.residual_sqr,
                ntf_idf: d.ntf_idf,
            })
            .collect(),
        profile: towerlens_artifact::DayProfile::from_vectors(vectors, bins_per_day),
    })
}

impl StudyReport {
    /// Builds the versioned query artifact ([`towerlens_artifact::Snapshot`])
    /// from a complete study.
    ///
    /// # Errors
    /// [`CoreError::NotEnoughData`] when the feature rows do not
    /// cover the kept vectors.
    pub fn to_snapshot(
        &self,
        fingerprint: u64,
        feature_space: FeatureSpace,
    ) -> Result<towerlens_artifact::Snapshot, CoreError> {
        snapshot_from_parts(
            &self.window,
            &self.kept_ids,
            &self.vectors,
            &self.patterns,
            Some(&self.geo.labels),
            &self.features,
            self.representatives,
            &self.decompositions,
            fingerprint,
            feature_space,
        )
    }
}

impl PartialStudyReport {
    /// Builds the versioned query artifact from a possibly degraded
    /// study. The frequency stage is required (the snapshot *is* the
    /// feature index); geo labels, the basis, and stored
    /// decompositions are included when their stages completed.
    ///
    /// # Errors
    /// [`CoreError::NotEnoughData`] when the frequency stage did not
    /// complete.
    pub fn to_snapshot(
        &self,
        fingerprint: u64,
        feature_space: FeatureSpace,
    ) -> Result<towerlens_artifact::Snapshot, CoreError> {
        let Some((features, _)) = &self.frequency else {
            return Err(CoreError::NotEnoughData {
                what: "frequency features for snapshot",
                needed: self.vectors.len(),
                got: 0,
            });
        };
        let (representatives, decompositions) = match &self.decomposition {
            Some((reps, rows)) => (*reps, rows.as_slice()),
            None => (None, &[] as &[Decomposition]),
        };
        snapshot_from_parts(
            &self.window,
            &self.kept_ids,
            &self.vectors,
            &self.patterns,
            self.geo.as_ref().map(|g| g.labels.as_slice()),
            features,
            representatives,
            decompositions,
            fingerprint,
            feature_space,
        )
    }
}

fn type_mismatch(name: &'static str) -> CoreError {
    CoreError::Engine(EngineError::Stage {
        stage: name.to_string(),
        message: "artifact has unexpected type".to_string(),
    })
}

/// Assembles the [`StudyReport`] from the stage artifacts.
fn assemble(
    config: &StudyConfig,
    artifacts: &mut HashMap<&'static str, StudyArtifact>,
) -> Result<StudyReport, CoreError> {
    let mut take = |name: &'static str| {
        artifacts
            .remove(name)
            .ok_or_else(|| EngineError::MissingArtifact {
                stage: "<assemble>".to_string(),
                dep: name.to_string(),
            })
    };
    let StudyArtifact::City(city) = take("city")? else {
        return Err(type_mismatch("city"));
    };
    let StudyArtifact::Raw(raw) = take("synthesize")? else {
        return Err(type_mismatch("synthesize"));
    };
    let StudyArtifact::Vectors(normalized) = take("vectorize")? else {
        return Err(type_mismatch("vectorize"));
    };
    let StudyArtifact::Patterns(patterns) = take("cluster")? else {
        return Err(type_mismatch("cluster"));
    };
    let StudyArtifact::Geo(geo) = take("label")? else {
        return Err(type_mismatch("label"));
    };
    let StudyArtifact::TimeDomain { series, stats } = take("timedomain")? else {
        return Err(type_mismatch("timedomain"));
    };
    let StudyArtifact::Frequency {
        features,
        stats: feature_stats,
    } = take("frequency")?
    else {
        return Err(type_mismatch("frequency"));
    };
    let StudyArtifact::Decompose {
        representatives,
        rows,
    } = take("decompose")?
    else {
        return Err(type_mismatch("decompose"));
    };
    Ok(StudyReport {
        city,
        window: config.window,
        raw,
        kept_ids: normalized.kept_ids,
        vectors: normalized.vectors,
        patterns,
        geo,
        cluster_series: series,
        time_stats: stats,
        features,
        feature_stats,
        representatives,
        decompositions: rows,
    })
}

/// Assembles the partial report: the spine is required, the optional
/// sections degrade to `None` when their stage failed or was pruned.
fn assemble_partial(
    config: &StudyConfig,
    artifacts: &mut HashMap<&'static str, StudyArtifact>,
) -> Result<PartialStudyReport, CoreError> {
    let mut take = |name: &'static str| {
        artifacts
            .remove(name)
            .ok_or_else(|| EngineError::MissingArtifact {
                stage: "<assemble>".to_string(),
                dep: name.to_string(),
            })
    };
    let StudyArtifact::City(city) = take("city")? else {
        return Err(type_mismatch("city"));
    };
    let StudyArtifact::Raw(raw) = take("synthesize")? else {
        return Err(type_mismatch("synthesize"));
    };
    let StudyArtifact::Vectors(normalized) = take("vectorize")? else {
        return Err(type_mismatch("vectorize"));
    };
    let StudyArtifact::Patterns(patterns) = take("cluster")? else {
        return Err(type_mismatch("cluster"));
    };
    let geo = match take("label") {
        Ok(StudyArtifact::Geo(geo)) => Some(geo),
        Ok(_) => return Err(type_mismatch("label")),
        Err(_) => None,
    };
    let time = match take("timedomain") {
        Ok(StudyArtifact::TimeDomain { series, stats }) => Some((series, stats)),
        Ok(_) => return Err(type_mismatch("timedomain")),
        Err(_) => None,
    };
    let frequency = match take("frequency") {
        Ok(StudyArtifact::Frequency { features, stats }) => Some((features, stats)),
        Ok(_) => return Err(type_mismatch("frequency")),
        Err(_) => None,
    };
    let decomposition = match take("decompose") {
        Ok(StudyArtifact::Decompose {
            representatives,
            rows,
        }) => Some((representatives, rows)),
        Ok(_) => return Err(type_mismatch("decompose")),
        Err(_) => None,
    };
    Ok(PartialStudyReport {
        city,
        window: config.window,
        raw,
        kept_ids: normalized.kept_ids,
        vectors: normalized.vectors,
        patterns,
        geo,
        time,
        frequency,
        decomposition,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StageStatus;

    #[test]
    fn tiny_study_runs_end_to_end() {
        let report = Study::new(StudyConfig::tiny(7)).run().unwrap();
        assert_eq!(report.raw.len(), 120);
        assert!(!report.vectors.is_empty());
        assert!(report.patterns.k >= 2);
        assert_eq!(report.geo.labels.len(), report.patterns.k);
        assert_eq!(report.time_stats.len(), report.patterns.k);
        assert_eq!(report.features.len(), report.vectors.len());
        let total = report.total_series();
        assert_eq!(total.len(), report.window.n_bins);
        assert!(total.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn study_is_deterministic() {
        let a = Study::new(StudyConfig::tiny(3)).run().unwrap();
        let b = Study::new(StudyConfig::tiny(3)).run().unwrap();
        assert_eq!(a.patterns.k, b.patterns.k);
        assert_eq!(a.patterns.clustering.labels, b.patterns.clustering.labels);
        assert_eq!(a.geo.labels, b.geo.labels);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    /// The golden equivalence: the staged engine must be numerically
    /// invisible relative to the original single-function driver.
    #[test]
    fn engine_matches_monolithic_bit_for_bit() {
        for seed in [3, 7] {
            let study = Study::new(StudyConfig::tiny(seed));
            let staged = study.run().unwrap();
            let monolithic = study.run_monolithic().unwrap();
            assert_eq!(
                staged.fingerprint(),
                monolithic.fingerprint(),
                "seed {seed}: staged engine diverged from the monolithic driver"
            );
        }
    }

    #[test]
    fn fingerprint_separates_different_runs() {
        let a = Study::new(StudyConfig::tiny(3)).run().unwrap();
        let b = Study::new(StudyConfig::tiny(4)).run().unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn resumed_run_reuses_checkpoints_and_matches_fresh_run() {
        let dir =
            std::env::temp_dir().join(format!("towerlens-study-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let study = Study::new(StudyConfig::tiny(7));
        let store = CheckpointStore::open(&dir, study.checkpoint_fingerprint()).unwrap();

        let (fresh, first) = study.run_instrumented(Some(&store)).unwrap();
        assert_eq!(first.with_status(StageStatus::Cached), Vec::<&str>::new());
        assert_eq!(first.with_status(StageStatus::Ran).len(), 8);

        let (resumed, second) = study.run_instrumented(Some(&store)).unwrap();
        assert_eq!(
            second.with_status(StageStatus::Cached),
            vec!["city", "synthesize", "vectorize", "cluster"]
        );
        // Cached stages keep their cardinality cards.
        let city_cards = &second.stage("city").unwrap().cards;
        assert!(city_cards
            .iter()
            .any(|c| c.label == "towers" && c.value == 120));
        assert_eq!(
            resumed.fingerprint(),
            fresh.fingerprint(),
            "resume changed the numbers"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resilient_run_on_a_healthy_study_is_complete_and_identical() {
        let study = Study::new(StudyConfig::tiny(7));
        let (partial, report) = study.run_resilient(None).unwrap();
        assert!(!report.degraded());
        assert!(partial.is_complete());
        let full = partial.into_full().unwrap();
        assert_eq!(full.fingerprint(), study.run().unwrap().fingerprint());
    }

    #[test]
    fn stale_fingerprint_recomputes_instead_of_resuming() {
        let dir =
            std::env::temp_dir().join(format!("towerlens-study-stale-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let seven = Study::new(StudyConfig::tiny(7));
        let store = CheckpointStore::open(&dir, seven.checkpoint_fingerprint()).unwrap();
        seven.run_instrumented(Some(&store)).unwrap();

        // A different seed opens the same directory with its own
        // fingerprint: every checkpoint misses.
        let eight = Study::new(StudyConfig::tiny(8));
        let store = CheckpointStore::open(&dir, eight.checkpoint_fingerprint()).unwrap();
        let (_, report) = eight.run_instrumented(Some(&store)).unwrap();
        assert_eq!(report.with_status(StageStatus::Cached), Vec::<&str>::new());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
