//! End-to-end study driver: city → traffic → vectorizer → patterns →
//! labels → time & frequency analyses → decomposition.
//!
//! This is the programmatic equivalent of "run the whole paper once".
//! The repro harness (`towerlens-bench`) and the examples consume the
//! [`StudyReport`] it produces.

use towerlens_city::city::City;
use towerlens_city::config::CityConfig;
use towerlens_city::generate::generate;
use towerlens_city::zone::RegionKind;
use towerlens_mobility::config::SynthConfig;
use towerlens_mobility::synth::synthesize_city;
use towerlens_opt::simplex::Solver;
use towerlens_pipeline::normalize::normalize_matrix;
use towerlens_trace::time::TraceWindow;

use crate::decompose::{Decomposer, Decomposition};
use crate::error::CoreError;
use crate::freq::{
    cluster_feature_stats, features_of, representative_towers, ClusterFeatureStats,
    TowerFeatures,
};
use crate::identifier::{IdentifiedPatterns, IdentifierConfig, PatternIdentifier};
use crate::labeling::{cluster_of_kind, label_clusters, GeoLabels};
use crate::timedomain::{cluster_series, cluster_time_stats, ClusterTimeStats};

/// Configuration of a full study run.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// City generation parameters.
    pub city: CityConfig,
    /// Traffic synthesis parameters.
    pub synth: SynthConfig,
    /// Binning window.
    pub window: TraceWindow,
    /// Pattern-identifier parameters.
    pub identifier: IdentifierConfig,
    /// How many comprehensive-cluster towers to decompose in §5.3.
    pub decompose_sample: usize,
}

impl StudyConfig {
    /// Paper scale: 9,600 towers, 4 weeks. Minutes of compute.
    pub fn paper_scale(seed: u64) -> Self {
        StudyConfig {
            city: CityConfig::paper_scale(seed),
            synth: SynthConfig {
                seed: seed ^ 0x5EED,
                ..SynthConfig::default()
            },
            window: TraceWindow::paper(),
            identifier: IdentifierConfig::default(),
            decompose_sample: 32,
        }
    }

    /// Medium scale (repro default): 2,400 towers, 4 weeks. Seconds.
    pub fn medium(seed: u64) -> Self {
        StudyConfig {
            city: CityConfig::medium(seed),
            ..StudyConfig::paper_scale(seed)
        }
    }

    /// Small scale: 600 towers, 2 weeks.
    pub fn small(seed: u64) -> Self {
        StudyConfig {
            city: CityConfig::small(seed),
            window: TraceWindow::days(14),
            ..StudyConfig::paper_scale(seed)
        }
    }

    /// Tiny scale for tests: 120 towers, 1 week.
    pub fn tiny(seed: u64) -> Self {
        StudyConfig {
            city: CityConfig::tiny(seed),
            window: TraceWindow::days(7),
            decompose_sample: 8,
            ..StudyConfig::paper_scale(seed)
        }
    }
}

/// Everything a study run produces.
#[derive(Debug)]
pub struct StudyReport {
    /// The generated city (ground truth included).
    pub city: City,
    /// The binning window used.
    pub window: TraceWindow,
    /// Raw per-tower traffic (tower id × bin, bytes).
    pub raw: Vec<Vec<f64>>,
    /// Tower id of each analysed (kept) vector.
    pub kept_ids: Vec<usize>,
    /// Z-scored traffic vectors (kept-index aligned).
    pub vectors: Vec<Vec<f64>>,
    /// The identified patterns (clustering, DBI curve, centroids).
    pub patterns: IdentifiedPatterns,
    /// Geographic labels and POI validation.
    pub geo: GeoLabels,
    /// Per-cluster aggregate raw series.
    pub cluster_series: Vec<Vec<f64>>,
    /// Per-cluster time-domain statistics (§4).
    pub time_stats: Vec<ClusterTimeStats>,
    /// Per-tower frequency features (kept-index aligned).
    pub features: Vec<TowerFeatures>,
    /// Per-cluster frequency-feature statistics (Fig 16).
    pub feature_stats: Vec<[ClusterFeatureStats; 3]>,
    /// Vector indices of the four representative towers (pure-pattern
    /// order), when all four pure patterns were labelled.
    pub representatives: Option<[usize; 4]>,
    /// §5.3 decompositions of sampled comprehensive towers (plus the
    /// four representatives themselves as the `F1..F4` sanity rows).
    pub decompositions: Vec<Decomposition>,
}

impl StudyReport {
    /// The cluster index labelled with `kind`, if any.
    pub fn cluster_of(&self, kind: RegionKind) -> Option<usize> {
        cluster_of_kind(&self.geo.labels, kind)
    }

    /// City-wide aggregate traffic series.
    pub fn total_series(&self) -> Vec<f64> {
        let n_bins = self.window.n_bins;
        let mut total = vec![0.0; n_bins];
        for row in &self.raw {
            for (t, v) in total.iter_mut().zip(row) {
                *t += v;
            }
        }
        total
    }

    /// The z-scored vector of a representative tower (by pure-pattern
    /// index 0..4), if representatives were found.
    pub fn representative_vector(&self, pure_idx: usize) -> Option<&[f64]> {
        let reps = self.representatives?;
        self.vectors.get(*reps.get(pure_idx)?).map(|v| v.as_slice())
    }
}

/// The study driver.
#[derive(Debug, Clone)]
pub struct Study {
    config: StudyConfig,
}

impl Study {
    /// Creates a study from a configuration.
    pub fn new(config: StudyConfig) -> Self {
        Study { config }
    }

    /// The configuration.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// Runs the full pipeline.
    ///
    /// # Errors
    /// Propagates every stage's failure as [`CoreError`].
    pub fn run(&self) -> Result<StudyReport, CoreError> {
        let cfg = &self.config;
        // 1. Ground truth.
        let city = generate(&cfg.city)?;
        // 2. Traffic (fast synthesis path).
        let raw = synthesize_city(&city, &cfg.window, &cfg.synth);
        // 3. Vectorize (phase 2: z-score; phase 1 happened in synth —
        //    the log path exercises the full vectorizer; see the
        //    integration tests).
        let normalized = normalize_matrix(&raw)?;
        let kept_ids = normalized.kept_ids.clone();
        let vectors = normalized.vectors;
        // 4. Identify patterns.
        let identifier = PatternIdentifier::new(cfg.identifier);
        let patterns = identifier.identify(&vectors)?;
        // 5. Geographic labels.
        let geo = label_clusters(&city, &patterns.clustering, &kept_ids)?;
        // 6. Time-domain statistics over the kept towers' raw rows.
        let kept_raw: Vec<Vec<f64>> = kept_ids.iter().map(|&id| raw[id].clone()).collect();
        let series = cluster_series(&kept_raw, &patterns.clustering)?;
        let time_stats: Vec<ClusterTimeStats> = series
            .iter()
            .map(|s| cluster_time_stats(s, &cfg.window))
            .collect::<Result<_, _>>()?;
        // 7. Frequency features.
        let features = features_of(&vectors, &cfg.window)?;
        let feature_stats = cluster_feature_stats(&features, &patterns.clustering)?;
        // 8. Representatives + decomposition.
        let pure_clusters: Option<Vec<usize>> = RegionKind::PURE
            .iter()
            .map(|&k| cluster_of_kind(&geo.labels, k))
            .collect();
        let (representatives, decompositions) = match pure_clusters {
            Some(pure) if pure.len() == 4 => {
                let reps = representative_towers(&features, &patterns.clustering, &pure)?;
                let reps4: [usize; 4] = [reps[0], reps[1], reps[2], reps[3]];
                let rep_features: [TowerFeatures; 4] = [
                    features[reps4[0]],
                    features[reps4[1]],
                    features[reps4[2]],
                    features[reps4[3]],
                ];
                let decomposer =
                    Decomposer::new(&rep_features, &city, &kept_ids, Solver::ActiveSet)?;
                // Rows F1..F4: the representatives themselves.
                let mut targets: Vec<usize> = reps4.to_vec();
                // Rows P1..Pn: sampled comprehensive towers.
                if let Some(comp) = cluster_of_kind(&geo.labels, RegionKind::Comprehensive) {
                    let members = patterns.clustering.members(comp);
                    let step = (members.len() / cfg.decompose_sample.max(1)).max(1);
                    targets.extend(members.iter().step_by(step).take(cfg.decompose_sample));
                }
                let rows = decomposer.decompose_all(&targets, &features)?;
                (Some(reps4), rows)
            }
            _ => (None, Vec::new()),
        };

        Ok(StudyReport {
            city,
            window: cfg.window,
            raw,
            kept_ids,
            vectors,
            patterns,
            geo,
            cluster_series: series,
            time_stats,
            features,
            feature_stats,
            representatives,
            decompositions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_study_runs_end_to_end() {
        let report = Study::new(StudyConfig::tiny(7)).run().unwrap();
        assert_eq!(report.raw.len(), 120);
        assert!(!report.vectors.is_empty());
        assert!(report.patterns.k >= 2);
        assert_eq!(report.geo.labels.len(), report.patterns.k);
        assert_eq!(report.time_stats.len(), report.patterns.k);
        assert_eq!(report.features.len(), report.vectors.len());
        let total = report.total_series();
        assert_eq!(total.len(), report.window.n_bins);
        assert!(total.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn study_is_deterministic() {
        let a = Study::new(StudyConfig::tiny(3)).run().unwrap();
        let b = Study::new(StudyConfig::tiny(3)).run().unwrap();
        assert_eq!(a.patterns.k, b.patterns.k);
        assert_eq!(a.patterns.clustering.labels, b.patterns.clustering.labels);
        assert_eq!(a.geo.labels, b.geo.labels);
    }
}
