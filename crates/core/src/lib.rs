//! # towerlens-core
//!
//! The paper's primary contribution: a model that combines **time**,
//! **location**, and **traffic frequency spectrum** to extract and
//! explain the traffic patterns of thousands of cellular towers
//! (Wang et al., *Understanding Mobile Traffic Patterns of Large Scale
//! Cellular Towers in Urban Environment*, IMC 2015).
//!
//! The modules follow the paper's section structure:
//!
//! * [`identifier`] — §3.2: the *pattern identifier* (hierarchical
//!   clustering over z-scored traffic vectors) plus the *metric tuner*
//!   (Davies–Bouldin index selects the cluster count / stop
//!   threshold).
//! * [`labeling`] — §3.3: maps each discovered pattern to an urban
//!   functional region via POI distributions (Tables 2–3, Figs 7–9).
//! * [`timedomain`] — §4: weekday/weekend ratios, peak–valley
//!   features, peak/valley times, inter-pattern relationships
//!   (Tables 4–5, Figs 10–11).
//! * [`freq`] — §5.1–5.2: the three principal frequency components
//!   (week / day / half-day), sparse reconstruction and its energy
//!   loss, per-tower amplitude/phase features, per-cluster feature
//!   statistics, and the representative-tower (polygon-vertex) search
//!   (Figs 12–17).
//! * [`decompose`] — §5.3: convex-combination decomposition of any
//!   tower over the four primary components, validated against POI
//!   NTF-IDF (Table 6, Figs 18–19).
//! * [`predict`] — applications on top of the model: sparse spectral
//!   forecasting and anomaly screening (the introduction's ISP
//!   use-cases).
//! * [`engine`] — the stage-graph execution engine: named stages with
//!   declared dependencies, concurrent wave scheduling, per-stage
//!   instrumentation, and filesystem checkpointing with resume.
//! * [`study`] — an end-to-end driver wiring city generation, traffic
//!   synthesis, the vectorizer, and all analyses into one call —
//!   expressed as an [`engine`] graph; the repro harness and the
//!   examples sit on top of it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decompose;
pub mod engine;
pub mod error;
pub mod freq;
pub mod identifier;
pub mod labeling;
pub mod predict;
pub mod study;
pub mod timedomain;

pub use engine::{
    CheckpointError, CheckpointStore, EngineError, FaultSpecError, IoFaultInjector, RetryPolicy,
    RunReport, StageReport, StageStatus, Supervisor,
};
pub use error::CoreError;
pub use identifier::{IdentifiedPatterns, IdentifierConfig, PatternIdentifier};
pub use study::{PartialStudyReport, Study, StudyConfig, StudyReport};
