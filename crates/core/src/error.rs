//! Unified error type for the core model.

use towerlens_city::CityError;
use towerlens_cluster::ClusterError;
use towerlens_dsp::DspError;
use towerlens_opt::OptError;
use towerlens_trace::TraceError;

/// Errors surfaced by the core analyses; substrate errors are wrapped
/// so callers keep their detail.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Signal-processing failure.
    Dsp(DspError),
    /// Clustering failure.
    Cluster(ClusterError),
    /// Optimisation failure.
    Opt(OptError),
    /// City/ground-truth failure.
    City(CityError),
    /// Trace/aggregation failure.
    Trace(TraceError),
    /// The analysis needs at least this many towers/clusters and the
    /// input has fewer.
    NotEnoughData {
        /// What was being counted.
        what: &'static str,
        /// Required minimum.
        needed: usize,
        /// What was available.
        got: usize,
    },
    /// An analysis that requires the four pure patterns couldn't find
    /// a cluster for each.
    MissingPattern {
        /// Label of the missing pattern.
        pattern: &'static str,
    },
    /// A harness was asked for an experiment id it doesn't know.
    UnknownExperiment {
        /// The requested id.
        id: String,
    },
    /// A stage-graph run failed (scheduling, checkpointing, or a
    /// stage's own computation).
    Engine(crate::engine::EngineError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Dsp(e) => write!(f, "dsp: {e}"),
            CoreError::Cluster(e) => write!(f, "cluster: {e}"),
            CoreError::Opt(e) => write!(f, "opt: {e}"),
            CoreError::City(e) => write!(f, "city: {e}"),
            CoreError::Trace(e) => write!(f, "trace: {e}"),
            CoreError::NotEnoughData { what, needed, got } => {
                write!(f, "not enough {what}: need {needed}, got {got}")
            }
            CoreError::MissingPattern { pattern } => {
                write!(f, "no cluster was labelled `{pattern}`")
            }
            CoreError::UnknownExperiment { id } => {
                write!(f, "unknown experiment id `{id}` (see `repro list`)")
            }
            CoreError::Engine(e) => write!(f, "engine: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<DspError> for CoreError {
    fn from(e: DspError) -> Self {
        CoreError::Dsp(e)
    }
}
impl From<ClusterError> for CoreError {
    fn from(e: ClusterError) -> Self {
        CoreError::Cluster(e)
    }
}
impl From<OptError> for CoreError {
    fn from(e: OptError) -> Self {
        CoreError::Opt(e)
    }
}
impl From<CityError> for CoreError {
    fn from(e: CityError) -> Self {
        CoreError::City(e)
    }
}
impl From<TraceError> for CoreError {
    fn from(e: TraceError) -> Self {
        CoreError::Trace(e)
    }
}
impl From<crate::engine::EngineError> for CoreError {
    fn from(e: crate::engine::EngineError) -> Self {
        CoreError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_preserves_detail() {
        let e: CoreError = DspError::ZeroVariance.into();
        assert!(e.to_string().contains("variance"));
        let e: CoreError = ClusterError::EmptyInput.into();
        assert!(e.to_string().contains("cluster"));
    }
}
