//! Forecasting and anomaly screening on top of the frequency-domain
//! model.
//!
//! The paper's §5 result — a tower's traffic is DC plus three spectral
//! lines — is also an operational tool, which the paper's introduction
//! motivates (load balancing, picking lightly-loaded towers). This
//! module turns it into:
//!
//! * [`SpectralModel`] — fit the sparse model on a training window,
//!   extrapolate it forward (the model is periodic by construction);
//! * [`SpectralModel::day_scores`] / [`screen_towers`] — compare later traffic
//!   against the model's prediction, normalised by the tower's own
//!   training-time residual level, and flag days that deviate far
//!   beyond it (special events, outages).

use towerlens_dsp::fft::FftPlan;
use towerlens_dsp::spectrum::Spectrum;
use towerlens_trace::time::TraceWindow;

use crate::error::CoreError;
use crate::freq::principal_bins;

/// A fitted sparse spectral traffic model.
#[derive(Debug, Clone)]
pub struct SpectralModel {
    /// The fitted (periodic) reconstruction over the training window.
    fitted: Vec<f64>,
    /// Bins kept (DC + week/day/half-day).
    bins: [usize; 4],
    /// RMS residual per training day — the tower's own noise level.
    train_residual_rms: f64,
    /// Bins per day in the source window.
    bins_per_day: usize,
}

impl SpectralModel {
    /// Fits the model on a training series.
    ///
    /// `train` must span a whole number of weeks (so the weekly line
    /// sits on an integer bin) and use the same bin width as `window`.
    ///
    /// # Errors
    /// * [`CoreError::NotEnoughData`] if the training span is not a
    ///   whole number of weeks,
    /// * wrapped spectrum errors for empty/corrupt input.
    pub fn fit(train: &[f64], window: &TraceWindow) -> Result<SpectralModel, CoreError> {
        Self::fit_with_plan(train, window, &FftPlan::new(train.len()))
    }

    /// [`SpectralModel::fit`] with a shared FFT plan — batch callers
    /// fit thousands of equal-length towers and shouldn't rebuild the
    /// twiddle table per tower.
    pub fn fit_with_plan(
        train: &[f64],
        window: &TraceWindow,
        plan: &FftPlan,
    ) -> Result<SpectralModel, CoreError> {
        let train_window = TraceWindow {
            start_s: window.start_s,
            bin_secs: window.bin_secs,
            n_bins: train.len(),
        };
        let [kw, kd, kh] = principal_bins(&train_window)?;
        let spectrum = Spectrum::of_with_plan(train, plan)?;
        let keep = [0, kw, kd, kh];
        let fitted = spectrum.reconstruct_from_bins_with_plan(&keep, plan)?;
        let residual_sq: f64 = fitted
            .iter()
            .zip(train)
            .map(|(f, t)| (f - t) * (f - t))
            .sum::<f64>()
            / train.len() as f64;
        Ok(SpectralModel {
            fitted,
            bins: keep,
            train_residual_rms: residual_sq.sqrt(),
            bins_per_day: (86_400 / window.bin_secs) as usize,
        })
    }

    /// The bins the model keeps (`[0, week, day, half-day]`).
    pub fn bins(&self) -> [usize; 4] {
        self.bins
    }

    /// RMS residual on the training data (the tower's normal noise
    /// level; anomaly scores are expressed in multiples of this).
    pub fn train_residual_rms(&self) -> f64 {
        self.train_residual_rms
    }

    /// Predicts `horizon` bins following the training window. The
    /// model is periodic with the training length; negative
    /// reconstruction artefacts are clamped to zero (traffic can't be
    /// negative).
    pub fn forecast(&self, horizon: usize) -> Vec<f64> {
        (0..horizon)
            .map(|i| self.fitted[i % self.fitted.len()].max(0.0))
            .collect()
    }

    /// Per-day anomaly scores of an evaluation series that follows
    /// the training window: day RMS deviation from the forecast,
    /// divided by the training residual RMS. A score of 1 means "as
    /// noisy as usual"; ≥3 is a strong anomaly.
    pub fn day_scores(&self, eval: &[f64]) -> Vec<f64> {
        let forecast = self.forecast(eval.len());
        let denom = self.train_residual_rms.max(1e-12);
        eval.chunks(self.bins_per_day)
            .zip(forecast.chunks(self.bins_per_day))
            .map(|(actual, predicted)| {
                let mse: f64 = actual
                    .iter()
                    .zip(predicted)
                    .map(|(a, p)| (a - p) * (a - p))
                    .sum::<f64>()
                    / actual.len().max(1) as f64;
                mse.sqrt() / denom
            })
            .collect()
    }
}

/// One flagged tower.
#[derive(Debug, Clone, PartialEq)]
pub struct TowerAnomaly {
    /// Row index into the screened matrix.
    pub tower: usize,
    /// Day offset (within the evaluation slice) of the worst day.
    pub day: usize,
    /// The worst day's anomaly score.
    pub score: f64,
}

/// Screens a whole traffic matrix: fits each tower's spectral model on
/// `train_days` and flags towers whose evaluation days deviate by more
/// than `threshold` × their own training residual.
///
/// Returns flagged towers sorted by descending score. Towers whose
/// model can't be fitted (dead/corrupt) are skipped silently — the
/// cleaning stage owns that reporting.
///
/// # Errors
/// [`CoreError::NotEnoughData`] if `train_days` is not a positive
/// whole number of weeks or leaves no evaluation data.
pub fn screen_towers(
    raw: &[Vec<f64>],
    window: &TraceWindow,
    train_days: usize,
    threshold: f64,
) -> Result<Vec<TowerAnomaly>, CoreError> {
    let per_day = (86_400 / window.bin_secs) as usize;
    let train_bins = train_days * per_day;
    let total_days = window.n_bins / per_day;
    if train_days == 0 || !train_days.is_multiple_of(7) || train_days >= total_days {
        return Err(CoreError::NotEnoughData {
            what: "whole training weeks before the evaluation slice",
            needed: 7,
            got: train_days,
        });
    }
    let mut flagged = Vec::new();
    let plan = FftPlan::new(train_bins);
    for (tower, row) in raw.iter().enumerate() {
        if row.len() < window.n_bins {
            continue;
        }
        let (train, eval) = row.split_at(train_bins);
        let Ok(model) = SpectralModel::fit_with_plan(train, window, &plan) else {
            continue;
        };
        let scores = model.day_scores(&eval[..(window.n_bins - train_bins)]);
        if let Some((day, &score)) = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        {
            if score > threshold {
                flagged.push(TowerAnomaly { tower, day, score });
            }
        }
    }
    flagged.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(flagged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use towerlens_city::zone::PoiKind;
    use towerlens_mobility::config::SynthConfig;
    use towerlens_mobility::profiles::pure_mix;
    use towerlens_mobility::synth::tower_vector;

    fn window(days: usize) -> TraceWindow {
        TraceWindow::days(days)
    }

    fn tower(kind: PoiKind, id: usize, days: usize, noise: f64) -> Vec<f64> {
        let cfg = SynthConfig {
            bin_noise_sigma: noise,
            day_noise_sigma: 0.0,
            tower_scale_sigma: 0.0,
            ..SynthConfig::default()
        };
        tower_vector(&pure_mix(kind), &window(days), &cfg, id)
    }

    #[test]
    fn forecast_of_periodic_signal_is_accurate() {
        let w = window(21);
        let series = tower(PoiKind::Office, 1, 21, 0.0);
        let (train, eval) = series.split_at(14 * 144);
        let model = SpectralModel::fit(train, &w).unwrap();
        let forecast = model.forecast(eval.len());
        // The sparse model keeps only 3 lines of a harmonically rich
        // profile, so it has an irreducible in-sample residual; the
        // meaningful claim is that the *out-of-sample* error matches
        // the in-sample one (no degradation) and stays well below the
        // signal scale.
        let rmse: f64 = (forecast
            .iter()
            .zip(eval)
            .map(|(f, a)| (f - a) * (f - a))
            .sum::<f64>()
            / eval.len() as f64)
            .sqrt();
        let mean = eval.iter().sum::<f64>() / eval.len() as f64;
        assert!(rmse < 0.5 * mean, "rmse {rmse} vs mean {mean}");
        let in_sample = model.train_residual_rms();
        assert!(
            (rmse - in_sample).abs() < 0.25 * in_sample,
            "out-of-sample {rmse} vs in-sample {in_sample}"
        );
    }

    #[test]
    fn forecast_is_nonnegative_and_periodic() {
        let w = window(14);
        let series = tower(PoiKind::Transport, 2, 14, 0.05);
        let model = SpectralModel::fit(&series, &w).unwrap();
        let f = model.forecast(3 * series.len());
        assert!(f.iter().all(|&v| v >= 0.0));
        assert_eq!(f[0], f[series.len()]);
    }

    #[test]
    fn fit_requires_whole_weeks() {
        let w = window(10);
        let series = tower(PoiKind::Office, 3, 10, 0.0);
        assert!(SpectralModel::fit(&series, &w).is_err());
    }

    #[test]
    fn quiet_days_score_low_spiked_days_high() {
        let w = window(21);
        let mut series = tower(PoiKind::Resident, 4, 21, 0.05);
        // Inject a flash-crowd on eval day 3 (window day 17), 19:00-23:00.
        let spike_day = 17;
        for bin in 0..144 {
            let (h, _) = w.time_of_day(spike_day * 144 + bin);
            if (19..23).contains(&h) {
                series[spike_day * 144 + bin] *= 8.0;
            }
        }
        let (train, eval) = series.split_at(14 * 144);
        let model = SpectralModel::fit(train, &w).unwrap();
        let scores = model.day_scores(eval);
        assert_eq!(scores.len(), 7);
        let spike_score = scores[3];
        for (d, &s) in scores.iter().enumerate() {
            if d != 3 {
                assert!(
                    spike_score > 4.0 * s,
                    "day 3 score {spike_score} vs day {d} {s}"
                );
            }
        }
    }

    #[test]
    fn screen_towers_finds_only_the_event_tower() {
        let w = window(21);
        let mut raw: Vec<Vec<f64>> = (0..12)
            .map(|id| tower(PoiKind::ALL[id % 4], id, 21, 0.05))
            .collect();
        // Event at tower 7, eval day 2.
        for bin in 0..144 {
            raw[7][16 * 144 + bin] *= 5.0;
        }
        let flagged = screen_towers(&raw, &w, 14, 3.0).unwrap();
        assert!(!flagged.is_empty(), "event not detected");
        assert_eq!(flagged[0].tower, 7);
        assert_eq!(flagged[0].day, 2);
        // No false positives at this noise level and threshold.
        assert_eq!(flagged.len(), 1, "{flagged:?}");
    }

    #[test]
    fn screen_validates_training_span() {
        let w = window(14);
        let raw = vec![tower(PoiKind::Office, 0, 14, 0.0)];
        assert!(screen_towers(&raw, &w, 0, 3.0).is_err());
        assert!(screen_towers(&raw, &w, 10, 3.0).is_err());
        assert!(screen_towers(&raw, &w, 14, 3.0).is_err());
    }

    #[test]
    fn dead_towers_are_skipped_not_fatal() {
        let w = window(21);
        let raw = vec![
            vec![0.0; w.n_bins], // dead: zero variance is fine for fit, but harmless
            tower(PoiKind::Office, 1, 21, 0.02),
        ];
        let flagged = screen_towers(&raw, &w, 14, 3.0).unwrap();
        // Nothing anomalous in either tower.
        assert!(flagged.is_empty(), "{flagged:?}");
    }
}
