//! Component analysis of towers in comprehensive areas (§5.3).
//!
//! Any tower's frequency-domain feature is (approximately) a convex
//! combination of the four most representative towers' features — the
//! "four primary components". The coefficients are recovered by the
//! simplex-constrained least-squares QP and validated against the POI
//! NTF-IDF of the tower's neighbourhood (Table 6); the combination is
//! also rendered in the time domain (Fig 19).

use towerlens_city::city::City;
use towerlens_opt::simplex::{simplex_least_squares, SimplexLsOptions, Solver};
use towerlens_opt::tfidf::TfIdfModel;

use crate::error::CoreError;
use crate::freq::TowerFeatures;
use crate::labeling::POI_RADIUS_M;

/// One decomposed tower (a row of Table 6).
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Index of the tower in the analysed vector set.
    pub vector_index: usize,
    /// Convex coefficients over the four primary components, in
    /// canonical pure-pattern order (resident, transport, office,
    /// entertainment).
    pub coefficients: [f64; 4],
    /// Squared distance between the tower's feature and its convex
    /// reconstruction (0 inside the polygon).
    pub residual_sqr: f64,
    /// NTF-IDF of the tower's POI neighbourhood, same order.
    pub ntf_idf: [f64; 4],
}

/// The decomposition engine: holds the four primary components.
#[derive(Debug, Clone)]
pub struct Decomposer {
    /// Feature vectors of the four representative towers
    /// (`f3` space), pure-pattern order.
    vertices: Vec<Vec<f64>>,
    /// TF-IDF model fitted over all analysed towers' POI counts.
    tfidf: TfIdfModel,
    /// Per-tower POI counts aligned with vector indices.
    poi_counts: Vec<[f64; 4]>,
    options: SimplexLsOptions,
}

impl Decomposer {
    /// Builds a decomposer.
    ///
    /// * `representatives` — features of the four representative
    ///   towers in pure-pattern order,
    /// * `city` / `kept_ids` — to fetch POI counts for NTF-IDF
    ///   validation (`kept_ids[i]` is the tower id of vector `i`).
    ///
    /// # Errors
    /// Wrapped TF-IDF fitting failures.
    pub fn new(
        representatives: &[TowerFeatures; 4],
        city: &City,
        kept_ids: &[usize],
        solver: Solver,
    ) -> Result<Self, CoreError> {
        let vertices = representatives.iter().map(|f| f.f3().to_vec()).collect();
        let poi_counts: Vec<[f64; 4]> = kept_ids
            .iter()
            .map(|&id| {
                let c = city
                    .poi_counts_near_tower(id, POI_RADIUS_M)
                    .unwrap_or([0; 4]);
                [c[0] as f64, c[1] as f64, c[2] as f64, c[3] as f64]
            })
            .collect();
        let corpus: Vec<Vec<f64>> = poi_counts.iter().map(|c| c.to_vec()).collect();
        let tfidf = TfIdfModel::fit(&corpus)?;
        Ok(Decomposer {
            vertices,
            tfidf,
            poi_counts,
            options: SimplexLsOptions {
                solver,
                ..SimplexLsOptions::default()
            },
        })
    }

    /// Decomposes one tower.
    ///
    /// # Errors
    /// QP failures; [`CoreError::NotEnoughData`] for an out-of-range
    /// index.
    pub fn decompose(
        &self,
        vector_index: usize,
        feature: &TowerFeatures,
    ) -> Result<Decomposition, CoreError> {
        if vector_index >= self.poi_counts.len() {
            return Err(CoreError::NotEnoughData {
                what: "poi rows",
                needed: vector_index + 1,
                got: self.poi_counts.len(),
            });
        }
        let target = feature.f3();
        let sol = simplex_least_squares(&self.vertices, &target, self.options)?;
        let mut coefficients = [0.0; 4];
        for (c, v) in coefficients.iter_mut().zip(&sol.coefficients) {
            *c = *v;
        }
        let ntf = self.tfidf.ntf_idf(&self.poi_counts[vector_index])?;
        let mut ntf_idf = [0.0; 4];
        for (n, v) in ntf_idf.iter_mut().zip(&ntf) {
            *n = *v;
        }
        Ok(Decomposition {
            vector_index,
            coefficients,
            residual_sqr: sol.residual_sqr,
            ntf_idf,
        })
    }

    /// Decomposes a batch of towers.
    ///
    /// # Errors
    /// As for [`Decomposer::decompose`].
    pub fn decompose_all(
        &self,
        indices: &[usize],
        features: &[TowerFeatures],
    ) -> Result<Vec<Decomposition>, CoreError> {
        self.decompose_all_par(indices, features, 1)
    }

    /// [`Decomposer::decompose_all`] fanned out over towers via
    /// [`towerlens_par`] (`threads == 0` = available parallelism).
    /// Every QP is independent and lands in its own slot, so the rows
    /// are bit-identical for any thread count.
    ///
    /// # Errors
    /// As for [`Decomposer::decompose`].
    pub fn decompose_all_par(
        &self,
        indices: &[usize],
        features: &[TowerFeatures],
        threads: usize,
    ) -> Result<Vec<Decomposition>, CoreError> {
        towerlens_par::par_map_indexed(indices, threads, |_, &i| {
            let f = features.get(i).ok_or(CoreError::NotEnoughData {
                what: "features",
                needed: i + 1,
                got: features.len(),
            })?;
            self.decompose(i, f)
        })
        .into_iter()
        .collect()
    }
}

/// Fig 19: renders a convex combination in the time domain — the
/// weighted sum of the four representative towers' (normalised)
/// traffic vectors.
pub fn time_domain_combination(
    coefficients: &[f64; 4],
    representative_vectors: &[&[f64]; 4],
) -> Vec<f64> {
    let n = representative_vectors[0].len();
    let mut out = vec![0.0; n];
    for (c, v) in coefficients.iter().zip(representative_vectors) {
        for (o, x) in out.iter_mut().zip(v.iter()) {
            *o += c * x;
        }
    }
    out
}

/// Rank-consistency score between coefficients and NTF-IDF: the paper
/// argues the *smallest* NTF-IDF entries should correspond to the
/// smallest coefficients. Returns the fraction of towers whose
/// argmin-NTF-IDF type is among the two smallest coefficients.
pub fn min_rank_consistency(rows: &[Decomposition]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    for row in rows {
        let argmin_ntf = (0..4)
            .min_by(|&a, &b| {
                row.ntf_idf[a]
                    .partial_cmp(&row.ntf_idf[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("4 entries");
        let mut coeff_order: Vec<usize> = (0..4).collect();
        coeff_order.sort_by(|&a, &b| {
            row.coefficients[a]
                .partial_cmp(&row.coefficients[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        if coeff_order[..2].contains(&argmin_ntf) {
            hits += 1;
        }
    }
    hits as f64 / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_domain_combination_is_weighted_sum() {
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 1.0];
        let c = vec![1.0, 1.0];
        let d = vec![2.0, 2.0];
        let coeff = [0.5, 0.5, 0.0, 0.0];
        let out = time_domain_combination(&coeff, &[&a, &b, &c, &d]);
        assert_eq!(out, vec![0.5, 0.5]);
    }

    #[test]
    fn rank_consistency_scores() {
        let perfect = Decomposition {
            vector_index: 0,
            coefficients: [0.5, 0.0, 0.3, 0.2],
            residual_sqr: 0.0,
            ntf_idf: [0.4, 0.0, 0.35, 0.25],
        };
        assert_eq!(min_rank_consistency(std::slice::from_ref(&perfect)), 1.0);
        let wrong = Decomposition {
            coefficients: [0.0, 0.6, 0.3, 0.1],
            ntf_idf: [0.0, 0.0, 0.5, 0.5],
            ..perfect
        };
        // argmin ntf = 0 (tie → first), coefficient 0 is the smallest →
        // still a hit.
        assert_eq!(min_rank_consistency(&[wrong]), 1.0);
        let miss = Decomposition {
            vector_index: 0,
            coefficients: [0.9, 0.05, 0.03, 0.02],
            residual_sqr: 0.0,
            ntf_idf: [0.0, 0.4, 0.3, 0.3],
        };
        assert_eq!(min_rank_consistency(&[miss]), 0.0);
        assert_eq!(min_rank_consistency(&[]), 0.0);
    }
}
