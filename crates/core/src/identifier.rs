//! The pattern identifier and metric tuner (§3.2).
//!
//! Takes the z-scored traffic vectors produced by the vectorizer, runs
//! bottom-up hierarchical clustering (Euclidean distance, average
//! linkage — the paper's choices), and selects the cut by minimising
//! the Davies–Bouldin index over a candidate range of cluster counts.
//! The selected cut's threshold is reported the way the paper quotes
//! its 16.33.
//!
//! The representation the clustering sees is a [`FeatureSpace`]
//! choice: the raw 4,032-dim traffic vector (the paper's setting,
//! materialised distance matrix) or the 6-dim spectral projection at
//! the window's principal bins (matrix-free on-demand distances — the
//! path that carries the paper's 9,600 towers and beyond). `Auto`, the
//! default, keeps small studies on the raw reference path and switches
//! large ones to spectral. A golden test below pins the two spaces to
//! agreement by Adjusted Rand Index on separable data.

use towerlens_cluster::agglomerative::{
    agglomerative_points, agglomerative_points_indexed, agglomerative_points_on_demand, Engine,
    Linkage,
};
use towerlens_cluster::dendrogram::{Clustering, Dendrogram};
use towerlens_cluster::validity::{best_by_dbi, dbi_sweep, DbiPoint};
use towerlens_pipeline::feature::{spectral_project, FeatureSpace};
use towerlens_trace::time::TraceWindow;

use crate::error::CoreError;

/// Configuration of the identifier.
#[derive(Debug, Clone, Copy)]
pub struct IdentifierConfig {
    /// Linkage criterion (the paper uses average linkage).
    pub linkage: Linkage,
    /// Clustering engine.
    pub engine: Engine,
    /// Smallest cluster count the metric tuner considers.
    pub k_min: usize,
    /// Largest cluster count the metric tuner considers.
    pub k_max: usize,
    /// Worker threads for the distance matrix / spectral projection
    /// (0 = auto).
    pub threads: usize,
    /// Representation towers are clustered in (default
    /// [`FeatureSpace::Auto`]: raw below
    /// [`towerlens_pipeline::SPECTRAL_AUTO_MIN`] towers, spectral at
    /// or above).
    pub feature_space: FeatureSpace,
}

impl Default for IdentifierConfig {
    fn default() -> Self {
        IdentifierConfig {
            linkage: Linkage::Average,
            engine: Engine::NnChain,
            k_min: 2,
            k_max: 12,
            threads: 0,
            feature_space: FeatureSpace::Auto,
        }
    }
}

/// The identifier's output: the chosen flat clustering plus everything
/// needed to reproduce Fig 6 and Table 1.
#[derive(Debug, Clone)]
pub struct IdentifiedPatterns {
    /// The DBI-optimal flat clustering (labels index the *input
    /// vectors*, i.e. kept towers).
    pub clustering: Clustering,
    /// Number of patterns found (`clustering.k`).
    pub k: usize,
    /// The stop threshold that yields this clustering (the paper's
    /// "16.33").
    pub threshold: f64,
    /// The DBI-vs-k curve the tuner minimised (Fig 6(a)).
    pub dbi_curve: Vec<DbiPoint>,
    /// Cluster centroids in the traffic-vector space (the pattern
    /// profiles of Fig 6(c–g)).
    pub centroids: Vec<Vec<f64>>,
    /// Per-cluster member→centroid distances (Fig 6(b) CDFs).
    pub member_distances: Vec<Vec<f64>>,
    /// The full dendrogram, for callers that want other cuts.
    pub dendrogram: Dendrogram,
}

/// The pattern identifier.
#[derive(Debug, Clone, Default)]
pub struct PatternIdentifier {
    config: IdentifierConfig,
}

impl PatternIdentifier {
    /// Creates an identifier with the given configuration.
    pub fn new(config: IdentifierConfig) -> Self {
        PatternIdentifier { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &IdentifierConfig {
        &self.config
    }

    /// Runs clustering + metric tuning over z-scored traffic vectors,
    /// always in the raw feature space's terms: equivalent to
    /// [`PatternIdentifier::identify_in`] with no window, so a
    /// configuration that resolves to the spectral space errors here.
    ///
    /// # Errors
    /// As for [`PatternIdentifier::identify_in`].
    pub fn identify(&self, vectors: &[Vec<f64>]) -> Result<IdentifiedPatterns, CoreError> {
        self.identify_in(vectors, None)
    }

    /// Runs clustering + metric tuning over z-scored traffic vectors
    /// in the configured [`FeatureSpace`].
    ///
    /// In the raw space the towers are clustered as-is over a
    /// materialised distance matrix (bit-identical to the
    /// pre-feature-space pipeline). In the spectral space each tower
    /// is first projected onto its six principal-component features
    /// for `window` — clustering and the DBI sweep then run in that
    /// 6-dim space, matrix-free — while centroids and member→centroid
    /// distances are still reported in the traffic-vector space, so
    /// Fig 6's pattern profiles keep their meaning in either space.
    ///
    /// # Errors
    /// * [`CoreError::NotEnoughData`] if fewer than `k_min + 1`
    ///   vectors are supplied, if the spectral space is selected
    ///   without a window, or if the window does not span whole weeks,
    /// * wrapped [`towerlens_cluster::ClusterError`] /
    ///   [`towerlens_dsp::DspError`] for validation failures.
    pub fn identify_in(
        &self,
        vectors: &[Vec<f64>],
        window: Option<&TraceWindow>,
    ) -> Result<IdentifiedPatterns, CoreError> {
        let cfg = &self.config;
        if vectors.len() <= cfg.k_min {
            return Err(CoreError::NotEnoughData {
                what: "traffic vectors",
                needed: cfg.k_min + 1,
                got: vectors.len(),
            });
        }
        // The space the dendrogram and the DBI sweep live in: the
        // towers themselves, or their 6-dim spectral projections.
        let projected = match cfg.feature_space.resolve(vectors.len()) {
            FeatureSpace::Raw => None,
            FeatureSpace::Spectral => {
                let window = window.ok_or(CoreError::NotEnoughData {
                    what: "trace window for spectral feature space",
                    needed: 1,
                    got: 0,
                })?;
                let bins =
                    towerlens_pipeline::principal_bins(window).ok_or(CoreError::NotEnoughData {
                        what: "whole weeks in window",
                        needed: 1,
                        got: 0,
                    })?;
                Some(spectral_project(vectors, bins, cfg.threads)?)
            }
            FeatureSpace::Auto => unreachable!("resolve() never returns Auto"),
        };
        let dendrogram = match &projected {
            // Raw: expensive high-dim leaf distances, computed once
            // into the materialised matrix.
            None => agglomerative_points(vectors, cfg.linkage, cfg.engine, cfg.threads)?,
            // Spectral: 6-dim leaf distances, recomputed on demand
            // through the exact-pruning spatial index — no O(n²)
            // buffer, and nearest-neighbour scans collapse to pruned
            // descents. Bit-identical to the plain on-demand path
            // (`TOWERLENS_CLUSTER_INDEX=off` forces it, as an escape
            // hatch and for the A/B smoke in scripts/check.sh).
            Some(features) if cluster_index_enabled() => {
                agglomerative_points_indexed(features, cfg.linkage, cfg.engine)?
            }
            Some(features) => agglomerative_points_on_demand(features, cfg.linkage, cfg.engine)?,
        };
        let space: &[Vec<f64>] = projected.as_deref().unwrap_or(vectors);
        let k_max = cfg.k_max.min(vectors.len());
        let dbi_curve = dbi_sweep(space, &dendrogram, cfg.k_min, k_max)?;
        let best = best_by_dbi(&dbi_curve).ok_or(CoreError::NotEnoughData {
            what: "DBI sweep points",
            needed: 1,
            got: 0,
        })?;
        let clustering = dendrogram.cut_k(best.k)?;
        let centroids = clustering.centroids(vectors)?;
        let member_distances = clustering.member_centroid_distances(vectors)?;
        Ok(IdentifiedPatterns {
            k: best.k,
            threshold: best.threshold,
            clustering,
            dbi_curve,
            centroids,
            member_distances,
            dendrogram,
        })
    }
}

/// Whether the spectral clustering stage routes nearest-neighbour
/// queries through the exact-pruning spatial index (the default).
/// `TOWERLENS_CLUSTER_INDEX=off` selects the plain on-demand scan;
/// both paths produce bit-identical dendrograms, so this is purely a
/// diagnostics/escape hatch.
fn cluster_index_enabled() -> bool {
    std::env::var("TOWERLENS_CLUSTER_INDEX").map_or(true, |v| v != "off")
}

#[cfg(test)]
mod tests {
    use super::*;
    use towerlens_city::zone::PoiKind;
    use towerlens_mobility::config::SynthConfig;
    use towerlens_mobility::profiles::pure_mix;
    use towerlens_mobility::synth::tower_vector;
    use towerlens_pipeline::normalize::normalize_matrix;
    use towerlens_trace::time::TraceWindow;

    /// Synthesises towers of the four pure kinds (noisy) and checks the
    /// identifier recovers the structure.
    fn pure_kind_vectors(per_kind: usize, window: &TraceWindow) -> (Vec<Vec<f64>>, Vec<usize>) {
        let cfg = SynthConfig {
            bin_noise_sigma: 0.15,
            day_noise_sigma: 0.05,
            ..SynthConfig::default()
        };
        let mut raw = Vec::new();
        let mut truth = Vec::new();
        for (g, kind) in PoiKind::ALL.iter().enumerate() {
            let mix = pure_mix(*kind);
            for i in 0..per_kind {
                raw.push(tower_vector(&mix, window, &cfg, g * per_kind + i));
                truth.push(g);
            }
        }
        let normalized = normalize_matrix(&raw).unwrap();
        assert_eq!(normalized.len(), raw.len());
        (normalized.vectors, truth)
    }

    #[test]
    fn recovers_four_pure_patterns() {
        let window = TraceWindow::days(7);
        let (vectors, truth) = pure_kind_vectors(12, &window);
        let id = PatternIdentifier::new(IdentifierConfig {
            k_max: 8,
            ..IdentifierConfig::default()
        });
        let found = id.identify(&vectors).unwrap();
        assert_eq!(found.k, 4, "dbi curve: {:?}", found.dbi_curve);
        // Clusters must align with ground truth (pairwise agreement).
        for i in 0..truth.len() {
            for j in 0..truth.len() {
                assert_eq!(
                    truth[i] == truth[j],
                    found.clustering.labels[i] == found.clustering.labels[j],
                    "towers {i},{j}"
                );
            }
        }
        assert!(found.threshold > 0.0);
        assert_eq!(found.centroids.len(), 4);
        assert_eq!(found.member_distances.len(), 4);
    }

    #[test]
    fn dbi_curve_covers_requested_range() {
        let window = TraceWindow::days(7);
        let (vectors, _) = pure_kind_vectors(8, &window);
        let id = PatternIdentifier::new(IdentifierConfig {
            k_min: 2,
            k_max: 6,
            ..IdentifierConfig::default()
        });
        let found = id.identify(&vectors).unwrap();
        let ks: Vec<usize> = found.dbi_curve.iter().map(|p| p.k).collect();
        assert_eq!(ks, vec![2, 3, 4, 5, 6]);
    }

    #[test]
    fn too_few_vectors_is_an_error() {
        let id = PatternIdentifier::default();
        let vectors = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        assert!(matches!(
            id.identify(&vectors),
            Err(CoreError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn spectral_space_agrees_with_raw_reference_by_ari() {
        // The golden test the feature-space refactor hangs on: on
        // separable data, clustering the 6-dim spectral projections
        // must recover (essentially) the same partition as the raw
        // 4,032-dim reference. Pinned by Adjusted Rand Index — 1.0 is
        // identical partitions, 0 is chance.
        let window = TraceWindow::days(7);
        let (vectors, _) = pure_kind_vectors(12, &window);
        let raw = PatternIdentifier::new(IdentifierConfig {
            k_max: 8,
            feature_space: FeatureSpace::Raw,
            ..IdentifierConfig::default()
        })
        .identify_in(&vectors, Some(&window))
        .unwrap();
        let spectral = PatternIdentifier::new(IdentifierConfig {
            k_max: 8,
            feature_space: FeatureSpace::Spectral,
            ..IdentifierConfig::default()
        })
        .identify_in(&vectors, Some(&window))
        .unwrap();
        let ari =
            towerlens_cluster::adjusted_rand_index(&raw.clustering, &spectral.clustering).unwrap();
        assert!(
            ari >= 0.9,
            "spectral vs raw ARI {ari} (raw k={}, spectral k={})",
            raw.k,
            spectral.k
        );
    }

    #[test]
    fn spectral_space_requires_a_window() {
        let window = TraceWindow::days(7);
        let (vectors, _) = pure_kind_vectors(2, &window);
        let id = PatternIdentifier::new(IdentifierConfig {
            feature_space: FeatureSpace::Spectral,
            ..IdentifierConfig::default()
        });
        assert!(matches!(
            id.identify(&vectors),
            Err(CoreError::NotEnoughData {
                what: "trace window for spectral feature space",
                ..
            })
        ));
        // A window without whole weeks is just as unusable.
        assert!(id
            .identify_in(&vectors, Some(&TraceWindow::days(5)))
            .is_err());
    }

    #[test]
    fn auto_space_is_bit_identical_to_raw_at_small_n() {
        // The compatibility contract: the default (Auto) resolves to
        // the raw reference below the switch-over, window or not.
        let window = TraceWindow::days(7);
        let (vectors, _) = pure_kind_vectors(6, &window);
        let auto = PatternIdentifier::default()
            .identify_in(&vectors, Some(&window))
            .unwrap();
        let raw = PatternIdentifier::new(IdentifierConfig {
            feature_space: FeatureSpace::Raw,
            ..IdentifierConfig::default()
        })
        .identify(&vectors)
        .unwrap();
        assert_eq!(auto.k, raw.k);
        assert_eq!(auto.clustering.labels, raw.clustering.labels);
        assert_eq!(auto.threshold.to_bits(), raw.threshold.to_bits());
    }

    #[test]
    fn naive_and_nnchain_agree() {
        let window = TraceWindow::days(3);
        let (vectors, _) = pure_kind_vectors(6, &window);
        let a = PatternIdentifier::new(IdentifierConfig {
            engine: Engine::Naive,
            ..IdentifierConfig::default()
        })
        .identify(&vectors)
        .unwrap();
        let b = PatternIdentifier::new(IdentifierConfig {
            engine: Engine::NnChain,
            ..IdentifierConfig::default()
        })
        .identify(&vectors)
        .unwrap();
        assert_eq!(a.k, b.k);
        for i in 0..vectors.len() {
            for j in 0..vectors.len() {
                assert_eq!(
                    a.clustering.labels[i] == a.clustering.labels[j],
                    b.clustering.labels[i] == b.clustering.labels[j]
                );
            }
        }
    }
}
