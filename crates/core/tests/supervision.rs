//! Property tests for the supervisor's backoff schedule.
//!
//! The retry delay must be a *pure function* of `(seed, stage,
//! attempt)` — no wall-clock, no global state — and monotonically
//! non-decreasing in the attempt number, capped at the policy
//! ceiling. Purity is what keeps supervised runs bit-reproducible:
//! two runs with the same seed sleep the same schedule.

use std::time::Duration;

use proptest::prelude::*;
use towerlens_core::engine::{backoff_delay, RetryPolicy};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn backoff_is_a_pure_function_of_its_inputs(
        seed in 0u64..u64::MAX,
        base_us in 1u64..100_000,
        cap_ms in 1u64..10_000,
        attempt in 0u32..64,
    ) {
        let base = Duration::from_micros(base_us);
        let cap = Duration::from_millis(cap_ms);
        let a = backoff_delay(base, cap, seed, attempt);
        let b = backoff_delay(base, cap, seed, attempt);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn backoff_is_monotone_and_capped(
        seed in 0u64..u64::MAX,
        base_us in 1u64..100_000,
        cap_ms in 1u64..10_000,
    ) {
        let base = Duration::from_micros(base_us);
        let cap = Duration::from_millis(cap_ms);
        let mut prev = Duration::ZERO;
        for attempt in 0..64u32 {
            let d = backoff_delay(base, cap, seed, attempt);
            prop_assert!(d >= prev, "attempt {}: {:?} < {:?}", attempt, d, prev);
            prop_assert!(d <= cap, "attempt {}: {:?} > cap {:?}", attempt, d, cap);
            prev = d;
        }
        // The exponential slot eventually saturates at the cap.
        prop_assert_eq!(prev, cap);
    }

    #[test]
    fn policy_schedule_depends_only_on_seed_and_stage(
        seed in 0u64..u64::MAX,
        retries in 1u32..12,
    ) {
        let mk = || {
            let mut p = RetryPolicy::new(retries);
            p.seed = seed;
            p
        };
        let schedule = |p: &RetryPolicy, stage: &str| -> Vec<Duration> {
            (0..retries).map(|a| p.delay(stage, a)).collect()
        };
        // Same policy, same stage: identical schedule (purity).
        prop_assert_eq!(schedule(&mk(), "cluster"), schedule(&mk(), "cluster"));
        // The stage name is folded into the seed, so sibling stages
        // retrying concurrently do not sleep in lockstep (the
        // exponential slots match, the jitter draws do not).
        let a = schedule(&mk(), "cluster");
        let b = schedule(&mk(), "vectorize");
        prop_assert!(
            a.iter().zip(&b).any(|(x, y)| x != y) || a.iter().all(|d| *d == Duration::ZERO),
            "distinct stages produced identical jitter: {:?}",
            a
        );
    }
}
